//! Periodic telemetry snapshots and their JSON-lines wire format.
//!
//! A [`Snapshot`] is one point-in-time export of a producer's monotonic
//! counters, instantaneous gauges, and per-stage span statistics. The wire
//! format is one self-contained JSON object per line (`\n`-terminated), so
//! consumers can tail a file, cut it with standard line tools, and parse
//! each line independently:
//!
//! ```text
//! {"schema":"tn-telemetry/1","seq":0,"t_ns":12345,
//!  "counters":{"serve.completed":100, ...},
//!  "gauges":{"serve.queue_depth":3.0, ...},
//!  "stages":{"kernel":{"count":12,"total_ns":99000,"max_ns":12000}, ...}}
//! ```
//!
//! [`Snapshot::parse_json_line`] is the inverse and doubles as the
//! validator behind the `snapshot_check` binary: it rejects anything that
//! does not carry the schema marker, the required fields, or well-formed
//! sections.

use std::collections::BTreeMap;

use crate::json::{escape, parse, JsonError, JsonValue};
use crate::span::{Stage, StageStats};

/// Schema marker stamped on every snapshot line.
pub const SCHEMA: &str = "tn-telemetry/1";

/// One point-in-time telemetry export.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic snapshot sequence number within the producing session.
    pub seq: u64,
    /// Producer clock time, nanoseconds (see [`crate::Clock`]).
    pub t_ns: u64,
    /// Monotonic counters, keyed by dotted name (`serve.completed`).
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges, keyed by dotted name (`serve.queue_depth`).
    pub gauges: BTreeMap<String, f64>,
    /// Per-stage span statistics, keyed by [`Stage::name`].
    pub stages: BTreeMap<String, StageStats>,
}

/// Why a snapshot line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The line is not valid JSON.
    Json(JsonError),
    /// The JSON is valid but does not match the snapshot schema.
    Schema(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "invalid JSON: {e}"),
            Self::Schema(msg) => write!(f, "schema violation: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

fn schema_err(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Schema(msg.into())
}

impl Snapshot {
    /// Start building a snapshot at `(seq, t_ns)`.
    pub fn new(seq: u64, t_ns: u64) -> Self {
        Self {
            seq,
            t_ns,
            ..Self::default()
        }
    }

    /// Add a monotonic counter.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.insert(name.to_string(), value);
        self
    }

    /// Add an instantaneous gauge. Non-finite values are stored as 0 so
    /// the wire format stays valid JSON (which has no NaN/Inf).
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        let value = if value.is_finite() { value } else { 0.0 };
        self.gauges.insert(name.to_string(), value);
        self
    }

    /// Add one stage's span statistics.
    pub fn stage(&mut self, stage: Stage, stats: StageStats) -> &mut Self {
        self.stages.insert(stage.name().to_string(), stats);
        self
    }

    /// Encode as one `\n`-terminated JSON line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"schema\":\"{SCHEMA}\",\"seq\":{},\"t_ns\":{},\"counters\":{{",
            self.seq, self.t_ns
        ));
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), value));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // {:?} prints f64 with enough digits to round-trip exactly.
            out.push_str(&format!("\"{}\":{:?}", escape(name), value));
        }
        out.push_str("},\"stages\":{");
        for (i, (name, stats)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                escape(name),
                stats.count,
                stats.total_ns,
                stats.max_ns
            ));
        }
        out.push_str("}}\n");
        out
    }

    /// Parse and validate one snapshot line (the inverse of
    /// [`Snapshot::to_json_line`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Json`] for malformed JSON, [`SnapshotError::Schema`]
    /// for valid JSON that is not a `tn-telemetry/1` snapshot.
    pub fn parse_json_line(line: &str) -> Result<Self, SnapshotError> {
        let doc = parse(line.trim_end_matches(['\n', '\r']))?;
        if doc.as_object().is_none() {
            return Err(schema_err("snapshot line must be a JSON object"));
        }
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(schema_err(format!("unknown schema {other:?}"))),
            None => return Err(schema_err("missing \"schema\" marker")),
        }
        let required_u64 = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| schema_err(format!("missing or non-integer \"{key}\"")))
        };
        let mut snap = Snapshot::new(required_u64("seq")?, required_u64("t_ns")?);
        for key in ["counters", "gauges", "stages"] {
            if doc.get(key).and_then(JsonValue::as_object).is_none() {
                return Err(schema_err(format!("missing or non-object \"{key}\"")));
            }
        }
        for (name, value) in doc.get("counters").unwrap().as_object().unwrap() {
            let v = value
                .as_u64()
                .ok_or_else(|| schema_err(format!("counter {name:?} is not a u64")))?;
            snap.counters.insert(name.clone(), v);
        }
        for (name, value) in doc.get("gauges").unwrap().as_object().unwrap() {
            let v = value
                .as_f64()
                .ok_or_else(|| schema_err(format!("gauge {name:?} is not a number")))?;
            snap.gauges.insert(name.clone(), v);
        }
        for (name, value) in doc.get("stages").unwrap().as_object().unwrap() {
            let field = |key: &str| {
                value
                    .get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| schema_err(format!("stage {name:?} missing u64 \"{key}\"")))
            };
            let stats = StageStats {
                count: field("count")?,
                total_ns: field("total_ns")?,
                max_ns: field("max_ns")?,
            };
            snap.stages.insert(name.clone(), stats);
        }
        // Unknown top-level keys are tolerated (forward compatibility),
        // but the known ones must be well-formed — checked above.
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(3, 1_000_000);
        s.counter("serve.completed", 42)
            .counter("chip.synaptic_ops", 123_456)
            .gauge("serve.queue_depth", 7.0)
            .gauge("serve.throughput_rps", 4100.25)
            .stage(
                Stage::Kernel,
                StageStats {
                    count: 10,
                    total_ns: 5_000,
                    max_ns: 900,
                },
            );
        s
    }

    #[test]
    fn json_line_round_trips_exactly() {
        let snap = sample();
        let line = snap.to_json_line();
        assert!(line.ends_with('\n'), "line-delimited format");
        assert!(!line.trim_end().contains('\n'), "one line per snapshot");
        let parsed = Snapshot::parse_json_line(&line).expect("parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let snap = Snapshot::new(0, 0);
        let parsed = Snapshot::parse_json_line(&snap.to_json_line()).expect("parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn non_finite_gauges_are_sanitized() {
        let mut s = Snapshot::new(0, 0);
        s.gauge("bad", f64::NAN).gauge("worse", f64::INFINITY);
        let parsed = Snapshot::parse_json_line(&s.to_json_line()).expect("valid JSON");
        assert_eq!(parsed.gauges["bad"], 0.0);
        assert_eq!(parsed.gauges["worse"], 0.0);
    }

    #[test]
    fn rejects_wrong_or_missing_schema() {
        assert!(matches!(
            Snapshot::parse_json_line(r#"{"seq":0,"t_ns":0}"#),
            Err(SnapshotError::Schema(_))
        ));
        assert!(matches!(
            Snapshot::parse_json_line(
                r#"{"schema":"other/9","seq":0,"t_ns":0,"counters":{},"gauges":{},"stages":{}}"#
            ),
            Err(SnapshotError::Schema(_))
        ));
        assert!(matches!(
            Snapshot::parse_json_line("not json at all"),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn rejects_ill_typed_sections() {
        let missing_counters =
            r#"{"schema":"tn-telemetry/1","seq":0,"t_ns":0,"gauges":{},"stages":{}}"#;
        assert!(Snapshot::parse_json_line(missing_counters).is_err());
        let float_counter = r#"{"schema":"tn-telemetry/1","seq":0,"t_ns":0,"counters":{"x":1.5},"gauges":{},"stages":{}}"#;
        assert!(Snapshot::parse_json_line(float_counter).is_err());
        let bad_stage = r#"{"schema":"tn-telemetry/1","seq":0,"t_ns":0,"counters":{},"gauges":{},"stages":{"kernel":{"count":1}}}"#;
        assert!(Snapshot::parse_json_line(bad_stage).is_err());
    }
}

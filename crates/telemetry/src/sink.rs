//! Metric egress: the [`MetricsSink`] trait and its stock implementations.
//!
//! Producers (the serving runtime, benches, anything with counters) stay
//! ignorant of where metrics go: they assemble a [`Snapshot`] and hand it
//! to a sink. The trait also receives each counter/gauge individually so a
//! sink can forward to a push-gateway-style backend without re-walking the
//! snapshot; [`emit`] drives both halves in the right order.

use std::io::Write;
use std::sync::Mutex;

use crate::snapshot::Snapshot;

/// Where telemetry goes.
///
/// Implementations must be cheap and non-blocking-ish: the producer calls
/// from its observer thread, never from the serving hot path, but a sink
/// that blocks for seconds will stall snapshot cadence.
pub trait MetricsSink: Send + Sync + std::fmt::Debug {
    /// One monotonic counter from a snapshot being exported.
    fn counter(&self, _name: &str, _value: u64) {}

    /// One instantaneous gauge from a snapshot being exported.
    fn gauge(&self, _name: &str, _value: f64) {}

    /// The assembled snapshot, after its counters/gauges were offered.
    fn export(&self, _snapshot: &Snapshot) {}
}

/// Feed one snapshot through a sink: every counter, every gauge, then the
/// snapshot itself.
pub fn emit(sink: &dyn MetricsSink, snapshot: &Snapshot) {
    for (name, value) in &snapshot.counters {
        sink.counter(name, *value);
    }
    for (name, value) in &snapshot.gauges {
        sink.gauge(name, *value);
    }
    sink.export(snapshot);
}

/// Discards everything (telemetry plumbing enabled, egress disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {}

/// Retains every export in memory — the test double.
#[derive(Debug, Default)]
pub struct MemorySink {
    snapshots: Mutex<Vec<Snapshot>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All snapshots exported so far, in order.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.snapshots.lock().expect("memory sink lock").clone()
    }

    /// Number of snapshots exported so far.
    pub fn len(&self) -> usize {
        self.snapshots.lock().expect("memory sink lock").len()
    }

    /// Whether nothing has been exported yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent value of counter `name`, if any snapshot carried it.
    pub fn last_counter(&self, name: &str) -> Option<u64> {
        self.snapshots
            .lock()
            .expect("memory sink lock")
            .iter()
            .rev()
            .find_map(|s| s.counters.get(name).copied())
    }

    /// The most recent value of gauge `name`, if any snapshot carried it.
    pub fn last_gauge(&self, name: &str) -> Option<f64> {
        self.snapshots
            .lock()
            .expect("memory sink lock")
            .iter()
            .rev()
            .find_map(|s| s.gauges.get(name).copied())
    }
}

impl MetricsSink for MemorySink {
    fn export(&self, snapshot: &Snapshot) {
        self.snapshots
            .lock()
            .expect("memory sink lock")
            .push(snapshot.clone());
    }
}

/// Retains the most recent snapshot for synchronous hand-off, optionally
/// forwarding every export to an inner sink.
///
/// This is the producer/consumer bridge a *serving front-end* needs: the
/// runtime's observer thread exports on its own cadence, while request
/// handlers (a live `/v1/snapshot` endpoint) read the latest snapshot on
/// theirs. [`LatestSink::latest`] is one mutex-guarded clone; the inner
/// sink (say a [`JsonLinesSink`] trail on disk) still sees the full
/// export stream via [`emit`], so tee-ing costs the producer nothing
/// extra.
#[derive(Debug, Default)]
pub struct LatestSink {
    latest: Mutex<Option<Snapshot>>,
    inner: Option<std::sync::Arc<dyn MetricsSink>>,
}

impl LatestSink {
    /// A sink that only retains the latest snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retain the latest snapshot *and* forward every export to `inner`.
    pub fn tee(inner: std::sync::Arc<dyn MetricsSink>) -> Self {
        Self {
            latest: Mutex::new(None),
            inner: Some(inner),
        }
    }

    /// The most recent snapshot exported so far, if any.
    pub fn latest(&self) -> Option<Snapshot> {
        self.latest.lock().expect("latest sink lock").clone()
    }

    /// Sequence number of the most recent snapshot, if any.
    pub fn latest_seq(&self) -> Option<u64> {
        self.latest
            .lock()
            .expect("latest sink lock")
            .as_ref()
            .map(|s| s.seq)
    }
}

impl MetricsSink for LatestSink {
    fn export(&self, snapshot: &Snapshot) {
        *self.latest.lock().expect("latest sink lock") = Some(snapshot.clone());
        if let Some(inner) = &self.inner {
            emit(&**inner, snapshot);
        }
    }
}

/// Writes each snapshot as one JSON line (see
/// [`Snapshot::to_json_line`]) to any `Write` — a file, stderr, a pipe.
///
/// Lines are flushed per export so a tailing consumer (or a crashed
/// producer's post-mortem) never sees a torn line.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> std::fmt::Debug for JsonLinesSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Unwrap the inner writer (for tests and drain-on-shutdown).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("jsonl sink lock")
    }
}

impl<W: Write + Send> MetricsSink for JsonLinesSink<W> {
    fn export(&self, snapshot: &Snapshot) {
        let line = snapshot.to_json_line();
        let mut w = self.writer.lock().expect("jsonl sink lock");
        // Telemetry must never take the serving stack down: swallow I/O
        // errors (a full disk loses observability, not requests).
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Stage, StageStats};

    fn sample(seq: u64) -> Snapshot {
        let mut s = Snapshot::new(seq, seq * 1000);
        s.counter("c.events", 10 + seq)
            .gauge("g.depth", seq as f64)
            .stage(Stage::Drain, StageStats::default());
        s
    }

    #[test]
    fn memory_sink_retains_order_and_latest_values() {
        let sink = MemorySink::new();
        emit(&sink, &sample(0));
        emit(&sink, &sample(1));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.snapshots()[0].seq, 0);
        assert_eq!(sink.last_counter("c.events"), Some(11));
        assert_eq!(sink.last_gauge("g.depth"), Some(1.0));
        assert_eq!(sink.last_counter("missing"), None);
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let sink = JsonLinesSink::new(Vec::new());
        emit(&sink, &sample(0));
        emit(&sink, &sample(1));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let snap = Snapshot::parse_json_line(line).expect("valid line");
            assert_eq!(snap.seq, i as u64);
        }
    }

    #[test]
    fn null_sink_accepts_everything() {
        emit(&NullSink, &sample(7));
    }

    #[test]
    fn latest_sink_retains_only_the_newest() {
        let sink = LatestSink::new();
        assert!(sink.latest().is_none());
        assert_eq!(sink.latest_seq(), None);
        emit(&sink, &sample(0));
        emit(&sink, &sample(5));
        let latest = sink.latest().expect("retained");
        assert_eq!(latest.seq, 5);
        assert_eq!(sink.latest_seq(), Some(5));
        assert_eq!(latest.counters["c.events"], 15);
    }

    #[test]
    fn latest_sink_tees_to_inner() {
        let inner = std::sync::Arc::new(MemorySink::new());
        let sink = LatestSink::tee(std::sync::Arc::clone(&inner) as _);
        emit(&sink, &sample(0));
        emit(&sink, &sample(1));
        assert_eq!(sink.latest_seq(), Some(1));
        assert_eq!(inner.len(), 2, "inner sink sees the full stream");
        assert_eq!(inner.last_counter("c.events"), Some(11));
    }
}

//! Snapshot-staleness detection: is a telemetry producer still alive?
//!
//! A `tn-telemetry/1` snapshot stream doubles as a heartbeat: a producer
//! that stops exporting is presumed unhealthy. [`FreshnessTracker`]
//! implements the consumer side of that rule as pure `u64`-nanosecond
//! arithmetic over a *consumer-stamped* arrival clock — never the
//! producer's own `t_ns` (each producer's clock has an arbitrary epoch,
//! so cross-process comparisons of `t_ns` are meaningless).
//!
//! The tracker is lock-free (`AtomicU64`) so a reader thread can
//! [`FreshnessTracker::mark`] arrivals while a dispatcher concurrently
//! asks [`FreshnessTracker::is_stale`]. All time is injected by the
//! caller, so staleness logic is deterministic under a
//! [`crate::ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Tracks when a snapshot stream last produced, and judges staleness
/// against a fixed age budget.
///
/// Construction counts as a first "arrival": a freshly connected
/// producer gets one full `max_age_ns` of grace before it can be judged
/// stale, so a consumer never flags a producer that simply has not had
/// time to emit its first snapshot yet.
///
/// ```
/// use tn_telemetry::{Clock, FreshnessTracker, ManualClock};
///
/// let clock = ManualClock::new();
/// let fresh = FreshnessTracker::new(1_000, clock.now_ns());
/// clock.advance_ns(999);
/// assert!(!fresh.is_stale(clock.now_ns()), "inside the age budget");
/// clock.advance_ns(2);
/// assert!(fresh.is_stale(clock.now_ns()), "budget exhausted");
/// fresh.mark(clock.now_ns());
/// assert!(!fresh.is_stale(clock.now_ns()), "an arrival resets the clock");
/// ```
#[derive(Debug)]
pub struct FreshnessTracker {
    /// Consumer-clock timestamp of the most recent arrival (or of
    /// construction, before anything arrived).
    last_seen_ns: AtomicU64,
    /// Maximum tolerated age before [`FreshnessTracker::is_stale`].
    max_age_ns: u64,
}

impl FreshnessTracker {
    /// A tracker judging against `max_age_ns`, armed at `now_ns`.
    pub fn new(max_age_ns: u64, now_ns: u64) -> Self {
        Self {
            last_seen_ns: AtomicU64::new(now_ns),
            max_age_ns,
        }
    }

    /// Record an arrival stamped `now_ns` by the *consumer's* clock.
    ///
    /// Arrivals may race; the freshest timestamp wins (a stale `mark`
    /// from a slow thread never rolls freshness backwards).
    pub fn mark(&self, now_ns: u64) {
        self.last_seen_ns.fetch_max(now_ns, Ordering::Relaxed);
    }

    /// Consumer-clock timestamp of the most recent arrival.
    pub fn last_seen_ns(&self) -> u64 {
        self.last_seen_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the most recent arrival (0 if `now_ns` is
    /// somehow older than the last arrival — clocks never run backwards
    /// here, they saturate).
    pub fn age_ns(&self, now_ns: u64) -> u64 {
        now_ns.saturating_sub(self.last_seen_ns())
    }

    /// The configured age budget.
    pub fn max_age_ns(&self) -> u64 {
        self.max_age_ns
    }

    /// Whether the stream's age *exceeds* its budget (an age of exactly
    /// `max_age_ns` is still fresh, so a budget equal to the producer's
    /// export cadence tolerates a perfectly periodic producer).
    pub fn is_stale(&self, now_ns: u64) -> bool {
        self.age_ns(now_ns) > self.max_age_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, ManualClock};

    #[test]
    fn grace_period_then_staleness() {
        let clock = ManualClock::new();
        let fresh = FreshnessTracker::new(500, clock.now_ns());
        assert!(!fresh.is_stale(clock.now_ns()), "fresh at construction");
        clock.advance_ns(500);
        assert!(!fresh.is_stale(clock.now_ns()), "exact budget is still fresh");
        clock.advance_ns(1);
        assert!(fresh.is_stale(clock.now_ns()));
        assert_eq!(fresh.age_ns(clock.now_ns()), 501);
    }

    #[test]
    fn marks_reset_the_age() {
        let clock = ManualClock::new();
        let fresh = FreshnessTracker::new(100, clock.now_ns());
        for _ in 0..5 {
            clock.advance_ns(90);
            assert!(!fresh.is_stale(clock.now_ns()));
            fresh.mark(clock.now_ns());
        }
        assert_eq!(fresh.age_ns(clock.now_ns()), 0);
        clock.advance_ns(101);
        assert!(fresh.is_stale(clock.now_ns()));
    }

    #[test]
    fn racing_marks_keep_the_freshest() {
        let fresh = FreshnessTracker::new(10, 0);
        fresh.mark(50);
        fresh.mark(20); // late-arriving older stamp must not win
        assert_eq!(fresh.last_seen_ns(), 50);
        assert_eq!(fresh.age_ns(40), 0, "age saturates at zero");
    }
}

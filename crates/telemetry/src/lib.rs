//! `tn-telemetry` — the observability substrate of the serving stack.
//!
//! This crate is deliberately dependency-free and knows nothing about
//! chips or queues; it provides the four primitives every layer above it
//! (the `tn-serve` runtime, the chip counter hooks, benches) reports
//! through:
//!
//! * **Clocks** ([`Clock`], [`MonotonicClock`], [`ManualClock`]) — time as
//!   plain nanosecond counters. Control math and span arithmetic consume
//!   `u64` nanoseconds, never `std::time::Instant`, so adaptive decisions
//!   are testable with a scripted clock and deterministic by construction.
//! * **Spans** ([`SpanRecorder`], [`Stage`]) — per-stage latency breakdown
//!   of the serving pipeline (`enqueue → drain → kernel → vote`) recorded
//!   into a fixed ring buffer with lifetime aggregates.
//! * **Snapshots** ([`Snapshot`]) — a periodic export of monotonic
//!   counters, gauges, and stage statistics, with a line-delimited JSON
//!   wire format (`tn-telemetry/1`) and a strict parser/validator.
//! * **Sinks** ([`MetricsSink`], [`NullSink`], [`MemorySink`],
//!   [`JsonLinesSink`], [`LatestSink`]) — pluggable egress; producers
//!   assemble snapshots, sinks decide where they go. [`LatestSink`]
//!   additionally hands the most recent snapshot back to synchronous
//!   readers (a live snapshot endpoint), optionally tee-ing to an inner
//!   sink.
//! * **Staleness** ([`FreshnessTracker`]) — the consumer side of using a
//!   snapshot stream as a heartbeat: lock-free last-arrival tracking and
//!   an age budget, judged on a consumer-stamped clock (the fleet router
//!   marks a shard unhealthy when its snapshots go stale).
//!
//! # Example
//!
//! ```
//! use tn_telemetry::{
//!     emit, Clock, ManualClock, MemorySink, Snapshot, SpanRecorder, Stage,
//! };
//!
//! let clock = ManualClock::new();
//! let spans = SpanRecorder::new(128);
//!
//! // ... the serving hot path records spans as work happens ...
//! let t0 = clock.now_ns();
//! clock.advance_ns(42_000); // (the real path does real work here)
//! spans.record(Stage::Kernel, t0, clock.now_ns() - t0);
//!
//! // ... and an observer periodically exports a snapshot ...
//! let mut snap = Snapshot::new(0, clock.now_ns());
//! snap.counter("serve.completed", 1)
//!     .gauge("serve.queue_depth", 0.0);
//! for (stage, stats) in Stage::ALL.iter().zip(spans.stage_stats()) {
//!     snap.stage(*stage, stats);
//! }
//! let sink = MemorySink::new();
//! emit(&sink, &snap);
//!
//! let line = snap.to_json_line();
//! assert_eq!(Snapshot::parse_json_line(&line).unwrap(), snap);
//! assert_eq!(sink.last_counter("serve.completed"), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
pub mod json;
mod sink;
mod snapshot;
mod span;
mod staleness;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use sink::{emit, JsonLinesSink, LatestSink, MemorySink, MetricsSink, NullSink};
pub use snapshot::{Snapshot, SnapshotError, SCHEMA};
pub use span::{SpanRecord, SpanRecorder, Stage, StageStats};
pub use staleness::FreshnessTracker;

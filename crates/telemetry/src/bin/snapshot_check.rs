//! Validate a telemetry JSON-lines file: every non-empty line must parse
//! as a `tn-telemetry/1` snapshot, at least `--min N` (default 1)
//! snapshots must be present, and any sparsity observability fields
//! (`serve.spike_density`, `serve.rows_skipped`, `chip.axon_visits`,
//! `chip.axon_slots`) must be internally consistent. Per-tenant
//! counters, when present, must tile the global serve family: the
//! `serve.model.{m}.submitted/completed/ticks` counters of all tenants
//! must sum to `serve.submitted`/`serve.completed`/`serve.ticks`. With
//! `--require-sparsity`, at least one snapshot must actually carry
//! sparse-walk activity (a compiled-backend serving run always does).
//! With `--models N`, every snapshot must carry exactly `N` tenants'
//! counter families (a packed serving run exports one per tenant).
//! With `--tiers N`, every snapshot must carry exactly `N` quality
//! tiers' `serve.tier.{t}.*` families, each internally consistent
//! (escalated ≤ completed ≤ submitted) and jointly bounded by the
//! global serve totals. Used by `scripts/verify.sh` to smoke-test
//! `serve_throughput --telemetry`.
//!
//! Usage: `snapshot_check <file.jsonl> [--min N] [--require-sparsity]
//! [--models N] [--tiers N]` (pass `-` to read stdin). Exits non-zero
//! on any violation.

use std::io::Read;

use tn_telemetry::Snapshot;

fn fail(msg: &str) -> ! {
    eprintln!("snapshot_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut min: u64 = 1;
    let mut require_sparsity = false;
    let mut models: Option<usize> = None;
    let mut tiers: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--min" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| fail("--min requires a value"));
                min = value
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--min {value:?} is not an integer")));
            }
            "--require-sparsity" => require_sparsity = true,
            "--models" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| fail("--models requires a value"));
                models = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| fail(&format!("--models {value:?} is not an integer"))),
                );
            }
            "--tiers" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| fail("--tiers requires a value"));
                tiers = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| fail(&format!("--tiers {value:?} is not an integer"))),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: snapshot_check <file.jsonl | -> [--min N] [--require-sparsity] \
                     [--models N] [--tiers N]"
                );
                return;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("missing input path (or '-' for stdin)"));

    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
        buf
    } else {
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
    };

    let mut count = 0u64;
    let mut max_seq = 0u64; // highest seq seen, for the summary
    let mut saw_sparsity = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Snapshot::parse_json_line(line) {
            Ok(snap) => {
                count += 1;
                max_seq = max_seq.max(snap.seq);
                check_sparsity(&snap, lineno + 1);
                check_models(&snap, models, lineno + 1);
                check_tiers(&snap, tiers, lineno + 1);
                if snap.counters.get("chip.axon_slots").copied().unwrap_or(0) > 0 {
                    saw_sparsity = true;
                }
            }
            Err(e) => fail(&format!("line {}: {e}", lineno + 1)),
        }
    }
    if count < min {
        fail(&format!("expected >= {min} snapshot line(s), found {count}"));
    }
    if require_sparsity && !saw_sparsity {
        fail("no snapshot carried sparse-walk activity (chip.axon_slots stayed 0)");
    }
    println!("snapshot_check: {count} valid snapshot(s), max seq {max_seq}");
}

/// Per-tenant counters must tile the global serve family: summed over
/// every `serve.model.{m}.*` family present, submitted/completed/ticks
/// must equal their `serve.*` totals (a request is served by exactly one
/// tenant). With `expected = Some(n)`, exactly `n` tenant families must
/// be present — the packed-smoke contract in `scripts/verify.sh`.
fn check_models(snap: &Snapshot, expected: Option<usize>, lineno: usize) {
    let mut n_models = 0usize;
    while snap
        .counters
        .contains_key(&format!("serve.model.{n_models}.completed"))
    {
        n_models += 1;
    }
    if let Some(expect) = expected {
        if n_models != expect {
            fail(&format!(
                "line {lineno}: expected {expect} tenant counter families, found {n_models}"
            ));
        }
    }
    if n_models == 0 {
        return;
    }
    for field in ["submitted", "completed", "ticks"] {
        let total = snap
            .counters
            .get(&format!("serve.{field}"))
            .copied()
            .unwrap_or(0);
        let tiled: u64 = (0..n_models)
            .map(|m| {
                snap.counters
                    .get(&format!("serve.model.{m}.{field}"))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        if tiled != total {
            fail(&format!(
                "line {lineno}: per-model serve.model.*.{field} sums to {tiled} \
                 but serve.{field} is {total}"
            ));
        }
    }
}

/// Per-tier counters must be internally consistent: within each
/// `serve.tier.{t}.*` family, `escalated <= completed <= submitted`
/// (an answer escalates at most once and only after being admitted),
/// and summed across tiers, submitted/completed can never exceed the
/// global serve totals (the default tier-less path also counts there).
/// With `expected = Some(n)`, exactly `n` tier families must be
/// present — the tiered-smoke contract in `scripts/verify.sh`.
fn check_tiers(snap: &Snapshot, expected: Option<usize>, lineno: usize) {
    let mut n_tiers = 0usize;
    while snap
        .counters
        .contains_key(&format!("serve.tier.{n_tiers}.completed"))
    {
        n_tiers += 1;
    }
    if let Some(expect) = expected {
        if n_tiers != expect {
            fail(&format!(
                "line {lineno}: expected {expect} tier counter families, found {n_tiers}"
            ));
        }
    }
    if n_tiers == 0 {
        return;
    }
    let counter = |key: String| snap.counters.get(&key).copied().unwrap_or(0);
    let (mut sum_submitted, mut sum_completed) = (0u64, 0u64);
    for t in 0..n_tiers {
        let submitted = counter(format!("serve.tier.{t}.submitted"));
        let completed = counter(format!("serve.tier.{t}.completed"));
        let escalated = counter(format!("serve.tier.{t}.escalated"));
        if escalated > completed {
            fail(&format!(
                "line {lineno}: serve.tier.{t}.escalated ({escalated}) exceeds \
                 serve.tier.{t}.completed ({completed})"
            ));
        }
        if completed > submitted {
            fail(&format!(
                "line {lineno}: serve.tier.{t}.completed ({completed}) exceeds \
                 serve.tier.{t}.submitted ({submitted})"
            ));
        }
        sum_submitted += submitted;
        sum_completed += completed;
    }
    for (field, tiled) in [("submitted", sum_submitted), ("completed", sum_completed)] {
        let total = counter(format!("serve.{field}"));
        if tiled > total {
            fail(&format!(
                "line {lineno}: per-tier serve.tier.*.{field} sums to {tiled}, \
                 exceeding serve.{field} ({total})"
            ));
        }
    }
}

/// Internal consistency of the sparse-walk observability fields, wherever
/// they appear: the density gauge must sit in [0, 1] and agree with the
/// cumulative visit/slot counters it is derived from, visits can never
/// exceed slots, and the `serve.*` skip counters must mirror `chip.*`.
fn check_sparsity(snap: &Snapshot, lineno: usize) {
    let counter = |key: &str| snap.counters.get(key).copied();
    let visits = counter("chip.axon_visits").unwrap_or(0);
    let slots = counter("chip.axon_slots").unwrap_or(0);
    if visits > slots {
        fail(&format!(
            "line {lineno}: chip.axon_visits ({visits}) exceeds chip.axon_slots ({slots})"
        ));
    }
    for (serve_key, chip_key) in [
        ("serve.rows_skipped", "chip.rows_skipped"),
        ("serve.cores_skipped", "chip.cores_skipped"),
    ] {
        if let Some(serve) = counter(serve_key) {
            let chip = counter(chip_key).unwrap_or(0);
            if serve != chip {
                fail(&format!(
                    "line {lineno}: {serve_key} ({serve}) != {chip_key} ({chip})"
                ));
            }
        }
    }
    if let Some(&density) = snap.gauges.get("serve.spike_density") {
        if !(0.0..=1.0).contains(&density) {
            fail(&format!(
                "line {lineno}: serve.spike_density {density} outside [0, 1]"
            ));
        }
        let expect = if slots == 0 {
            0.0
        } else {
            visits as f64 / slots as f64
        };
        if (density - expect).abs() > 1e-6 {
            fail(&format!(
                "line {lineno}: serve.spike_density {density} disagrees with \
                 chip.axon_visits/chip.axon_slots ({expect})"
            ));
        }
    }
}

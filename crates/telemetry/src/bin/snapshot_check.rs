//! Validate a telemetry JSON-lines file: every non-empty line must parse
//! as a `tn-telemetry/1` snapshot, and at least `--min N` (default 1)
//! snapshots must be present. Used by `scripts/verify.sh` to smoke-test
//! `serve_throughput --telemetry`.
//!
//! Usage: `snapshot_check <file.jsonl> [--min N]`
//! (pass `-` to read stdin). Exits non-zero on any violation.

use std::io::Read;

use tn_telemetry::Snapshot;

fn fail(msg: &str) -> ! {
    eprintln!("snapshot_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut min: u64 = 1;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--min" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| fail("--min requires a value"));
                min = value
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--min {value:?} is not an integer")));
            }
            "--help" | "-h" => {
                println!("usage: snapshot_check <file.jsonl | -> [--min N]");
                return;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("missing input path (or '-' for stdin)"));

    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
        buf
    } else {
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
    };

    let mut count = 0u64;
    let mut max_seq = 0u64; // highest seq seen, for the summary
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Snapshot::parse_json_line(line) {
            Ok(snap) => {
                count += 1;
                max_seq = max_seq.max(snap.seq);
            }
            Err(e) => fail(&format!("line {}: {e}", lineno + 1)),
        }
    }
    if count < min {
        fail(&format!("expected >= {min} snapshot line(s), found {count}"));
    }
    println!("snapshot_check: {count} valid snapshot(s), max seq {max_seq}");
}

//! Validate a telemetry JSON-lines file: every non-empty line must parse
//! as a `tn-telemetry/1` snapshot, at least `--min N` (default 1)
//! snapshots must be present, and any sparsity observability fields
//! (`serve.spike_density`, `serve.rows_skipped`, `chip.axon_visits`,
//! `chip.axon_slots`) must be internally consistent. With
//! `--require-sparsity`, at least one snapshot must actually carry
//! sparse-walk activity (a compiled-backend serving run always does).
//! Used by `scripts/verify.sh` to smoke-test `serve_throughput
//! --telemetry`.
//!
//! Usage: `snapshot_check <file.jsonl> [--min N] [--require-sparsity]`
//! (pass `-` to read stdin). Exits non-zero on any violation.

use std::io::Read;

use tn_telemetry::Snapshot;

fn fail(msg: &str) -> ! {
    eprintln!("snapshot_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut min: u64 = 1;
    let mut require_sparsity = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--min" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| fail("--min requires a value"));
                min = value
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--min {value:?} is not an integer")));
            }
            "--require-sparsity" => require_sparsity = true,
            "--help" | "-h" => {
                println!("usage: snapshot_check <file.jsonl | -> [--min N] [--require-sparsity]");
                return;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("missing input path (or '-' for stdin)"));

    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
        buf
    } else {
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
    };

    let mut count = 0u64;
    let mut max_seq = 0u64; // highest seq seen, for the summary
    let mut saw_sparsity = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Snapshot::parse_json_line(line) {
            Ok(snap) => {
                count += 1;
                max_seq = max_seq.max(snap.seq);
                check_sparsity(&snap, lineno + 1);
                if snap.counters.get("chip.axon_slots").copied().unwrap_or(0) > 0 {
                    saw_sparsity = true;
                }
            }
            Err(e) => fail(&format!("line {}: {e}", lineno + 1)),
        }
    }
    if count < min {
        fail(&format!("expected >= {min} snapshot line(s), found {count}"));
    }
    if require_sparsity && !saw_sparsity {
        fail("no snapshot carried sparse-walk activity (chip.axon_slots stayed 0)");
    }
    println!("snapshot_check: {count} valid snapshot(s), max seq {max_seq}");
}

/// Internal consistency of the sparse-walk observability fields, wherever
/// they appear: the density gauge must sit in [0, 1] and agree with the
/// cumulative visit/slot counters it is derived from, visits can never
/// exceed slots, and the `serve.*` skip counters must mirror `chip.*`.
fn check_sparsity(snap: &Snapshot, lineno: usize) {
    let counter = |key: &str| snap.counters.get(key).copied();
    let visits = counter("chip.axon_visits").unwrap_or(0);
    let slots = counter("chip.axon_slots").unwrap_or(0);
    if visits > slots {
        fail(&format!(
            "line {lineno}: chip.axon_visits ({visits}) exceeds chip.axon_slots ({slots})"
        ));
    }
    for (serve_key, chip_key) in [
        ("serve.rows_skipped", "chip.rows_skipped"),
        ("serve.cores_skipped", "chip.cores_skipped"),
    ] {
        if let Some(serve) = counter(serve_key) {
            let chip = counter(chip_key).unwrap_or(0);
            if serve != chip {
                fail(&format!(
                    "line {lineno}: {serve_key} ({serve}) != {chip_key} ({chip})"
                ));
            }
        }
    }
    if let Some(&density) = snap.gauges.get("serve.spike_density") {
        if !(0.0..=1.0).contains(&density) {
            fail(&format!(
                "line {lineno}: serve.spike_density {density} outside [0, 1]"
            ));
        }
        let expect = if slots == 0 {
            0.0
        } else {
            visits as f64 / slots as f64
        };
        if (density - expect).abs() > 1e-6 {
            fail(&format!(
                "line {lineno}: serve.spike_density {density} disagrees with \
                 chip.axon_visits/chip.axon_slots ({expect})"
            ));
        }
    }
}

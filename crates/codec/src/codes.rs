//! The five TrueNorth neural coding schemes cited by the paper (§1-2):
//! stochastic, rate, population, time-to-spike, and rank codes.
//!
//! The paper's experiments use the **stochastic code** for inputs: each
//! pixel/activation `x ∈ [0, 1]` becomes an independent Bernoulli(`x`) spike
//! per time step, and "spikes per frame" (spf) is the number of time steps
//! spent per input frame. The deterministic codes are provided for
//! completeness and are exercised by the codec benches.

use crate::train::SpikeTrain;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Validates that inputs are normalized probabilities.
fn assert_normalized(values: &[f32]) {
    assert!(
        values.iter().all(|v| (0.0..=1.0).contains(v)),
        "code inputs must be normalized into [0, 1]"
    );
}

/// Stochastic code: value `x` spikes Bernoulli(`x`) independently each step.
///
/// This is the code used to feed frames to the chip in all paper
/// experiments; `steps` is the paper's *spikes per frame* (spf).
///
/// # Examples
///
/// ```
/// use tn_codec::codes::StochasticCode;
/// let mut code = StochasticCode::new(9);
/// let t = code.encode(&[0.0, 1.0, 0.5], 64);
/// assert_eq!(t.count(0), 0);   // never spikes
/// assert_eq!(t.count(1), 64);  // always spikes
/// let r = t.rate(2);
/// assert!((r - 0.5).abs() < 0.2); // stochastic, near 0.5
/// ```
///
/// # Panics
///
/// `encode` panics if any value is outside `[0, 1]`.
#[derive(Debug, Clone)]
pub struct StochasticCode {
    seed: u64,
    counter: u64,
}

impl StochasticCode {
    /// A stochastic encoder with a deterministic seed stream.
    pub fn new(seed: u64) -> Self {
        Self { seed, counter: 0 }
    }

    /// Encode values into `steps` Bernoulli samples each. Successive calls
    /// advance the stream (fresh randomness per frame, reproducible per
    /// seed).
    pub fn encode(&mut self, values: &[f32], steps: usize) -> SpikeTrain {
        assert_normalized(values);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.counter));
        self.counter = self.counter.wrapping_add(1);
        let mut t = SpikeTrain::new(steps, values.len());
        for s in 0..steps {
            for (c, &v) in values.iter().enumerate() {
                if v > 0.0 && rng.gen::<f32>() < v {
                    t.set(s, c, true);
                }
            }
        }
        t
    }

    /// Decode by spike rate.
    pub fn decode(&self, train: &SpikeTrain) -> Vec<f32> {
        train.rates()
    }
}

/// Deterministic rate code: value `x` emits `round(x·steps)` spikes spread
/// evenly across the window (Bresenham-style).
///
/// ```
/// use tn_codec::codes::RateCode;
/// let t = RateCode.encode(&[0.5], 8);
/// assert_eq!(t.count(0), 4);
/// let decoded = RateCode.decode(&t);
/// assert!((decoded[0] - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RateCode;

impl RateCode {
    /// Encode values as evenly spaced spikes.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1]`.
    pub fn encode(&self, values: &[f32], steps: usize) -> SpikeTrain {
        assert_normalized(values);
        let mut t = SpikeTrain::new(steps, values.len());
        for (c, &v) in values.iter().enumerate() {
            let n = (v * steps as f32).round() as usize;
            if n == 0 {
                continue;
            }
            for k in 0..n {
                // Even spacing: step = floor(k * steps / n).
                let s = k * steps / n;
                t.set(s, c, true);
            }
        }
        t
    }

    /// Decode by spike rate.
    pub fn decode(&self, train: &SpikeTrain) -> Vec<f32> {
        train.rates()
    }
}

/// Population (thermometer) code: one value spreads over `pool` channels;
/// the first `round(x·pool)` channels spike once.
///
/// ```
/// use tn_codec::codes::PopulationCode;
/// let code = PopulationCode::new(10);
/// let t = code.encode(&[0.3]);
/// assert_eq!(t.total_spikes(), 3);
/// assert!((code.decode(&t)[0] - 0.3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationCode {
    pool: usize,
}

impl PopulationCode {
    /// A population code with `pool` channels per value.
    ///
    /// # Panics
    ///
    /// Panics if `pool == 0`.
    pub fn new(pool: usize) -> Self {
        assert!(pool > 0, "population pool must be nonzero");
        Self { pool }
    }

    /// Channels used per encoded value.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Encode each value into a thermometer pattern over one time step.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1]`.
    pub fn encode(&self, values: &[f32]) -> SpikeTrain {
        assert_normalized(values);
        let mut t = SpikeTrain::new(1, values.len() * self.pool);
        for (i, &v) in values.iter().enumerate() {
            let n = (v * self.pool as f32).round() as usize;
            for k in 0..n {
                t.set(0, i * self.pool + k, true);
            }
        }
        t
    }

    /// Decode by counting active channels per pool.
    ///
    /// # Panics
    ///
    /// Panics if the raster width is not a multiple of the pool size.
    pub fn decode(&self, train: &SpikeTrain) -> Vec<f32> {
        assert_eq!(
            train.channels() % self.pool,
            0,
            "raster width not a multiple of pool"
        );
        (0..train.channels() / self.pool)
            .map(|i| {
                let on = (0..self.pool)
                    .filter(|&k| train.count(i * self.pool + k) > 0)
                    .count();
                on as f32 / self.pool as f32
            })
            .collect()
    }
}

/// Time-to-spike code: larger values spike earlier. Value `x` spikes once at
/// step `round((1−x)·(steps−1))`.
///
/// ```
/// use tn_codec::codes::TimeToSpikeCode;
/// let code = TimeToSpikeCode;
/// let t = code.encode(&[1.0, 0.0], 10);
/// assert_eq!(t.first_spike(0), Some(0)); // strongest: immediate
/// assert_eq!(t.first_spike(1), Some(9)); // weakest: last step
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeToSpikeCode;

impl TimeToSpikeCode {
    /// Encode values as single spikes with value-dependent latency.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or a value is outside `[0, 1]`.
    pub fn encode(&self, values: &[f32], steps: usize) -> SpikeTrain {
        assert!(steps > 0, "time-to-spike needs at least one step");
        assert_normalized(values);
        let mut t = SpikeTrain::new(steps, values.len());
        for (c, &v) in values.iter().enumerate() {
            let s = ((1.0 - v) * (steps - 1) as f32).round() as usize;
            t.set(s, c, true);
        }
        t
    }

    /// Decode latencies back to values (channels that never spike decode
    /// to 0).
    pub fn decode(&self, train: &SpikeTrain) -> Vec<f32> {
        let steps = train.steps().max(1);
        (0..train.channels())
            .map(|c| match train.first_spike(c) {
                Some(s) if steps > 1 => 1.0 - s as f32 / (steps - 1) as f32,
                Some(_) => 1.0,
                None => 0.0,
            })
            .collect()
    }
}

/// Rank-order code: channels spike in descending value order, one per step.
///
/// Only the ordering is preserved; decode reconstructs normalized ranks.
///
/// ```
/// use tn_codec::codes::RankCode;
/// let code = RankCode;
/// let t = code.encode(&[0.1, 0.9, 0.5]);
/// assert_eq!(t.first_spike(1), Some(0)); // highest value first
/// assert_eq!(t.first_spike(2), Some(1));
/// assert_eq!(t.first_spike(0), Some(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankCode;

impl RankCode {
    /// Encode values as a rank-ordered spike sequence (`n` steps for `n`
    /// values; ties broken by channel index).
    ///
    /// # Panics
    ///
    /// Panics if a value is outside `[0, 1]`.
    pub fn encode(&self, values: &[f32]) -> SpikeTrain {
        assert_normalized(values);
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| {
            values[b]
                .partial_cmp(&values[a])
                .expect("normalized values are comparable")
                .then(a.cmp(&b))
        });
        let mut t = SpikeTrain::new(values.len(), values.len());
        for (step, &ch) in order.iter().enumerate() {
            t.set(step, ch, true);
        }
        t
    }

    /// Decode to normalized ranks in `[0, 1]` (first spiker = 1.0).
    pub fn decode(&self, train: &SpikeTrain) -> Vec<f32> {
        let n = train.channels();
        (0..n)
            .map(|c| match train.first_spike(c) {
                Some(s) if n > 1 => 1.0 - s as f32 / (n - 1) as f32,
                Some(_) => 1.0,
                None => 0.0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stochastic_rate_converges_to_value() {
        let mut code = StochasticCode::new(1);
        let t = code.encode(&[0.25, 0.75], 4000);
        assert!((t.rate(0) - 0.25).abs() < 0.03);
        assert!((t.rate(1) - 0.75).abs() < 0.03);
    }

    #[test]
    fn stochastic_streams_differ_per_frame_but_reproduce_per_seed() {
        let mut a = StochasticCode::new(7);
        let f1 = a.encode(&[0.5; 16], 8);
        let f2 = a.encode(&[0.5; 16], 8);
        assert_ne!(f1, f2, "fresh randomness per frame");
        let mut b = StochasticCode::new(7);
        assert_eq!(b.encode(&[0.5; 16], 8), f1, "same seed replays");
    }

    #[test]
    fn rate_code_is_exact_for_multiples() {
        let t = RateCode.encode(&[0.0, 0.25, 1.0], 8);
        assert_eq!(t.count(0), 0);
        assert_eq!(t.count(1), 2);
        assert_eq!(t.count(2), 8);
    }

    #[test]
    fn rate_code_spreads_spikes() {
        // 2 spikes in 8 steps must not be adjacent.
        let t = RateCode.encode(&[0.25], 8);
        let times: Vec<usize> = (0..8).filter(|&s| t.get(s, 0)).collect();
        assert_eq!(times, vec![0, 4]);
    }

    #[test]
    fn rate_roundtrip_error_bounded_by_quantization() {
        let values = [0.13_f32, 0.49, 0.77, 0.92];
        let steps = 16;
        let t = RateCode.encode(&values, steps);
        for (v, d) in values.iter().zip(RateCode.decode(&t)) {
            assert!((v - d).abs() <= 0.5 / steps as f32 + 1e-6);
        }
    }

    #[test]
    fn population_roundtrip() {
        let code = PopulationCode::new(20);
        let values = [0.0_f32, 0.35, 1.0];
        let decoded = code.decode(&code.encode(&values));
        for (v, d) in values.iter().zip(decoded) {
            assert!((v - d).abs() <= 0.5 / 20.0 + 1e-6);
        }
    }

    #[test]
    fn time_to_spike_roundtrip() {
        let code = TimeToSpikeCode;
        let values = [0.0_f32, 0.5, 1.0];
        let t = code.encode(&values, 21);
        let decoded = code.decode(&t);
        for (v, d) in values.iter().zip(decoded) {
            assert!((v - d).abs() < 0.05);
        }
    }

    #[test]
    fn rank_code_orders_by_value() {
        let decoded = RankCode.decode(&RankCode.encode(&[0.2, 0.8, 0.5, 0.9]));
        // Ranks: 0.9 → 1.0, 0.8 → 2/3, 0.5 → 1/3, 0.2 → 0.
        assert!(decoded[3] > decoded[1]);
        assert!(decoded[1] > decoded[2]);
        assert!(decoded[2] > decoded[0]);
    }

    #[test]
    fn rank_code_breaks_ties_by_index() {
        let t = RankCode.encode(&[0.5, 0.5]);
        assert_eq!(t.first_spike(0), Some(0));
        assert_eq!(t.first_spike(1), Some(1));
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn codes_reject_unnormalized_input() {
        let _ = RateCode.encode(&[1.5], 4);
    }

    #[test]
    fn single_step_time_to_spike() {
        let t = TimeToSpikeCode.encode(&[0.9], 1);
        assert_eq!(t.first_spike(0), Some(0));
        assert_eq!(TimeToSpikeCode.decode(&t), vec![1.0]);
    }
}

//! # tn-codec — TrueNorth neural coding schemes
//!
//! TrueNorth communicates exclusively in binary spikes, so real-valued
//! inputs and outputs must pass through a *neural code*. The paper (§1-2)
//! names the codes the chip supports; this crate implements all of them:
//!
//! | Code | Module type | Used for |
//! |---|---|---|
//! | stochastic | [`codes::StochasticCode`] | the paper's experiments: Bernoulli spike per step, `steps` = spf |
//! | rate | [`codes::RateCode`] | deterministic spike-count encoding |
//! | population | [`codes::PopulationCode`] | thermometer over a channel pool |
//! | time-to-spike | [`codes::TimeToSpikeCode`] | latency encoding |
//! | rank | [`codes::RankCode`] | order encoding |
//!
//! The exchange format is the bit-packed [`train::SpikeTrain`] raster.
//!
//! ```
//! use tn_codec::prelude::*;
//! let mut code = StochasticCode::new(42);
//! let train = code.encode(&[0.2, 0.8], 4); // 4 spikes per frame
//! assert_eq!(train.steps(), 4);
//! assert_eq!(train.channels(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codes;
pub mod train;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::codes::{PopulationCode, RankCode, RateCode, StochasticCode, TimeToSpikeCode};
    pub use crate::train::SpikeTrain;
}

//! [`SpikeTrain`]: a bit-packed (time-step × channel) binary spike raster.
//!
//! All neural codes in this crate encode real values into spike trains and
//! decode spike trains back into values. The raster is the unit of exchange
//! with the chip model: axon injections consume one time-step slice at a
//! time, and output spike collection appends slices.

use serde::{Deserialize, Serialize};

/// A binary spike raster over `steps` time steps and `channels` channels.
///
/// # Examples
///
/// ```
/// use tn_codec::train::SpikeTrain;
/// let mut t = SpikeTrain::new(4, 3);
/// t.set(0, 2, true);
/// t.set(3, 2, true);
/// assert!(t.get(0, 2));
/// assert_eq!(t.count(2), 2);
/// assert_eq!(t.rate(2), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeTrain {
    steps: usize,
    channels: usize,
    words_per_step: usize,
    bits: Vec<u64>,
}

impl SpikeTrain {
    /// An empty raster of the given shape.
    pub fn new(steps: usize, channels: usize) -> Self {
        let words_per_step = channels.div_ceil(64);
        Self {
            steps,
            channels,
            words_per_step,
            bits: vec![0; steps * words_per_step],
        }
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Read the spike bit at `(step, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, step: usize, channel: usize) -> bool {
        self.check(step, channel);
        let w = step * self.words_per_step + channel / 64;
        (self.bits[w] >> (channel % 64)) & 1 == 1
    }

    /// Write the spike bit at `(step, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, step: usize, channel: usize, value: bool) {
        self.check(step, channel);
        let w = step * self.words_per_step + channel / 64;
        let mask = 1u64 << (channel % 64);
        if value {
            self.bits[w] |= mask;
        } else {
            self.bits[w] &= !mask;
        }
    }

    fn check(&self, step: usize, channel: usize) {
        assert!(
            step < self.steps && channel < self.channels,
            "({step},{channel}) out of raster {}x{}",
            self.steps,
            self.channels
        );
    }

    /// Total spikes on a channel.
    pub fn count(&self, channel: usize) -> usize {
        (0..self.steps).filter(|&s| self.get(s, channel)).count()
    }

    /// Spike rate (count / steps) on a channel; 0 for a zero-step raster.
    pub fn rate(&self, channel: usize) -> f32 {
        if self.steps == 0 {
            return 0.0;
        }
        self.count(channel) as f32 / self.steps as f32
    }

    /// All channel rates.
    pub fn rates(&self) -> Vec<f32> {
        (0..self.channels).map(|c| self.rate(c)).collect()
    }

    /// Total spikes in the raster.
    pub fn total_spikes(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Channels spiking at `step`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn active_at(&self, step: usize) -> Vec<usize> {
        assert!(step < self.steps, "step {step} out of range {}", self.steps);
        let mut out = Vec::new();
        for w in 0..self.words_per_step {
            let mut word = self.bits[step * self.words_per_step + w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                let ch = w * 64 + bit;
                if ch < self.channels {
                    out.push(ch);
                }
                word &= word - 1;
            }
        }
        out
    }

    /// First spike time on `channel`, if any.
    pub fn first_spike(&self, channel: usize) -> Option<usize> {
        (0..self.steps).find(|&s| self.get(s, channel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_raster_has_no_spikes() {
        let t = SpikeTrain::new(5, 70);
        assert_eq!(t.total_spikes(), 0);
        assert_eq!(t.count(69), 0);
        assert_eq!(t.first_spike(0), None);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut t = SpikeTrain::new(2, 130);
        for ch in [0usize, 63, 64, 127, 128, 129] {
            t.set(1, ch, true);
            assert!(t.get(1, ch), "channel {ch}");
            assert!(!t.get(0, ch));
        }
        assert_eq!(t.total_spikes(), 6);
    }

    #[test]
    fn set_false_clears() {
        let mut t = SpikeTrain::new(1, 10);
        t.set(0, 3, true);
        t.set(0, 3, false);
        assert!(!t.get(0, 3));
    }

    #[test]
    fn active_at_lists_sorted_channels() {
        let mut t = SpikeTrain::new(1, 200);
        for &ch in &[5usize, 64, 199, 0] {
            t.set(0, ch, true);
        }
        assert_eq!(t.active_at(0), vec![0, 5, 64, 199]);
    }

    #[test]
    fn rates_reflect_counts() {
        let mut t = SpikeTrain::new(4, 2);
        t.set(0, 0, true);
        t.set(2, 0, true);
        assert_eq!(t.rates(), vec![0.5, 0.0]);
    }

    #[test]
    fn first_spike_finds_earliest() {
        let mut t = SpikeTrain::new(5, 1);
        t.set(3, 0, true);
        t.set(4, 0, true);
        assert_eq!(t.first_spike(0), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of raster")]
    fn out_of_range_get_panics() {
        let t = SpikeTrain::new(2, 2);
        let _ = t.get(2, 0);
    }

    #[test]
    fn zero_step_rate_is_zero() {
        let t = SpikeTrain::new(0, 3);
        assert_eq!(t.rate(1), 0.0);
    }
}

//! The worker side of the fleet: one [`ServeRuntime`] behind a framed
//! connection.
//!
//! A shard is deliberately thin — all serving machinery (batching,
//! replicas, tiers, controller) lives in the runtime it hosts. The
//! shard's job is protocol: answer the router's Hello expectation,
//! decode Req frames into [`SubmitRequest::at_seq`] submissions (the
//! *router* owns the sequence counter — that is what makes any shard's
//! answer for seq `k` bit-identical to a solo runtime's), stream
//! completed answers back, and ride the runtime's own `tn-telemetry/1`
//! snapshots out as Snap frames so telemetry doubles as the heartbeat.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use tn_chip::nscs::NetworkDeploySpec;
use tn_serve::{ControlAction, RequestHandle, ServeConfig, ServeError, ServeRuntime};
use tn_telemetry::{MetricsSink, Snapshot};

use crate::frame::{read_frame, write_frame, FrameKind};
use crate::msg::{encode_err, encode_resp, parse_req, Ack, Ctrl, Hello};
use crate::transport::Transport;

/// Shared write half of the shard's connection. Whole frames go out
/// under one lock acquisition, so Resp, Err, Snap, and Ack frames from
/// different threads never interleave.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn send(writer: &SharedWriter, kind: FrameKind, payload: &str) {
    let mut w = writer.lock().expect("shard writer lock");
    // A failed write means the router hung up; the reader loop will see
    // the same condition and wind down — nothing useful to do here.
    let _ = write_frame(&mut **w, kind, payload.as_bytes());
}

/// [`MetricsSink`] that frames every runtime snapshot onto the
/// connection: the shard's health heartbeat *is* its telemetry.
struct FrameSink {
    writer: SharedWriter,
    mute: Arc<AtomicBool>,
}

impl std::fmt::Debug for FrameSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameSink")
            .field("mute", &self.mute.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl MetricsSink for FrameSink {
    fn export(&self, snapshot: &Snapshot) {
        if self.mute.load(Ordering::Relaxed) {
            return;
        }
        let line = snapshot.to_json_line();
        send(&self.writer, FrameKind::Snap, line.trim_end());
    }
}

/// One hosted runtime speaking the fleet protocol over a [`Transport`].
#[derive(Debug)]
pub struct ShardServer {
    runtime: Arc<ServeRuntime>,
    mute: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl ShardServer {
    /// Deploy `spec` under `cfg` and serve the fleet protocol over
    /// `conn` until the router sends [`Ctrl::Shutdown`] or hangs up.
    ///
    /// Sends the [`Hello`] announcement immediately; with
    /// [`ServeConfig::telemetry`] set, the runtime's observer snapshots
    /// ride out as Snap-frame heartbeats at the configured interval.
    ///
    /// # Errors
    ///
    /// Deployment/config errors from [`ServeRuntime::new_with_sink`],
    /// or [`ServeError::BadConfig`] if the transport cannot be cloned
    /// or the handshake cannot be written.
    pub fn host<T: Transport>(
        spec: &NetworkDeploySpec,
        cfg: ServeConfig,
        conn: T,
    ) -> Result<Self, ServeError> {
        let write_half = conn
            .try_clone()
            .map_err(|e| ServeError::BadConfig(format!("shard transport clone failed: {e}")))?;
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
        let mute = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(FrameSink {
            writer: Arc::clone(&writer),
            mute: Arc::clone(&mute),
        });
        let runtime = Arc::new(ServeRuntime::new_with_sink(spec, cfg, sink)?);

        let hello = Hello {
            n_inputs: runtime.n_inputs(),
            n_classes: runtime.n_classes(),
            models: (0..runtime.models())
                .map(|m| {
                    (
                        runtime.model_n_inputs(m).unwrap_or(0),
                        runtime.model_n_classes(m).unwrap_or(0),
                    )
                })
                .collect(),
            replicas: runtime.replicas(),
            packed: runtime.is_packed(),
            kernel_batch: runtime.kernel_batch(),
            spf: runtime.spf_per_class(),
            tiers: runtime.tier_names(),
            queue_capacity: runtime.config().queue_capacity,
            cores: runtime.cores(),
        };
        {
            let mut w = writer.lock().expect("shard writer lock");
            write_frame(&mut **w, FrameKind::Hello, hello.encode().as_bytes())
                .map_err(|e| ServeError::BadConfig(format!("shard handshake failed: {e}")))?;
        }

        // Completion pump: handles arrive in submission order; seq tags on
        // every Resp/Err frame mean the router never depends on ordering,
        // so FIFO head-of-line waiting here is harmless and keeps the
        // shard single-pump simple.
        let (tx, rx) = mpsc::channel::<(u64, RequestHandle)>();
        let pump_writer = Arc::clone(&writer);
        let pump = std::thread::Builder::new()
            .name("tn-fleet-shard-pump".to_string())
            .spawn(move || {
                for (seq, handle) in rx {
                    match handle.wait() {
                        Ok(resp) => send(&pump_writer, FrameKind::Resp, &encode_resp(&resp)),
                        Err(e) => send(&pump_writer, FrameKind::Err, &encode_err(seq, &e)),
                    }
                }
            })
            .expect("spawn shard pump thread");

        let reader_rt = Arc::clone(&runtime);
        let reader_writer = Arc::clone(&writer);
        let reader = std::thread::Builder::new()
            .name("tn-fleet-shard-reader".to_string())
            .spawn(move || {
                let mut conn = conn;
                // Dropping `tx` on exit closes the pump's queue; the pump
                // drains every already-admitted request first, so a
                // shutdown never orphans an accepted submission.
                let tx = tx;
                // Clean close, cut connection, or protocol garbage:
                // the shard's response is the same — stop accepting
                // and drain.
                while let Ok(Some(frame)) = read_frame(&mut conn) {
                    match frame {
                        (FrameKind::Req, payload) => {
                            let text = String::from_utf8_lossy(&payload);
                            let (seq, request) = match parse_req(&text) {
                                Ok(r) => r,
                                Err(_) => break, // poisoned stream
                            };
                            match reader_rt.submit(request) {
                                Ok(handle) => {
                                    if tx.send((seq, handle)).is_err() {
                                        break;
                                    }
                                }
                                Err(e) => {
                                    send(&reader_writer, FrameKind::Err, &encode_err(seq, &e));
                                }
                            }
                        }
                        (FrameKind::Ctrl, payload) => {
                            let text = String::from_utf8_lossy(&payload);
                            match Ctrl::parse(&text) {
                                Ok(Ctrl::SetReplicas(r)) => {
                                    let result =
                                        reader_rt.apply_control(&ControlAction::SetReplicas(r));
                                    let ack = Ack {
                                        op: "set_replicas".to_string(),
                                        error: result.err().map(|e| e.to_string()),
                                    };
                                    send(&reader_writer, FrameKind::Ack, &ack.encode());
                                }
                                Ok(Ctrl::Shutdown) => {
                                    let ack = Ack {
                                        op: "shutdown".to_string(),
                                        error: None,
                                    };
                                    send(&reader_writer, FrameKind::Ack, &ack.encode());
                                    break;
                                }
                                Err(_) => break,
                            }
                        }
                        // Anything else from a router is a protocol
                        // violation; refuse to guess.
                        _ => break,
                    }
                }
            })
            .expect("spawn shard reader thread");

        Ok(Self {
            runtime,
            mute,
            reader: Some(reader),
            pump: Some(pump),
        })
    }

    /// Suppress (or resume) Snap-frame heartbeats without touching the
    /// hosted runtime — the handle for exercising the router's
    /// snapshot-staleness health detection deterministically.
    pub fn mute_snapshots(&self, mute: bool) {
        self.mute.store(mute, Ordering::Relaxed);
    }

    /// The hosted runtime (introspection in tests and examples).
    pub fn runtime(&self) -> &ServeRuntime {
        &self.runtime
    }

    /// Wait for the connection to wind down (router shutdown or
    /// hang-up), drain every admitted request, shut the runtime down,
    /// and return its final metrics.
    ///
    /// The final runtime snapshot is exported through the frame sink on
    /// this path, so a router that is still listening sees one last
    /// heartbeat with the shard's closing counters.
    pub fn join(mut self) -> tn_serve::MetricsSnapshot {
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
        if let Some(p) = self.pump.take() {
            let _ = p.join();
        }
        let runtime = Arc::try_unwrap(self.runtime)
            .expect("shard threads joined; no other runtime owners remain");
        runtime.shutdown()
    }
}

//! The byte-stream abstraction both fleet tiers speak over.
//!
//! A fleet connection needs *two independently owned halves* — the
//! shard's reader loop blocks in `read` while its completion pump and
//! telemetry sink write — which is exactly the `TcpStream::try_clone`
//! shape. [`Transport`] names that capability so the same shard and
//! router code runs over real sockets (one shard per process) and over
//! [`tn_serve::pipe::duplex`] in-memory pipes (a whole fleet inside one
//! deterministic test process).

use std::io::{self, Read, Write};
use std::net::TcpStream;

use tn_serve::pipe::PipeStream;

/// A duplex byte stream whose read and write halves can be owned by
/// different threads.
pub trait Transport: Read + Write + Send + Sized + 'static {
    /// A second handle to the same underlying stream (shared cursor
    /// semantics, like [`TcpStream::try_clone`]).
    ///
    /// # Errors
    ///
    /// Whatever the underlying stream reports (resource limits).
    fn try_clone(&self) -> io::Result<Self>;
}

impl Transport for TcpStream {
    fn try_clone(&self) -> io::Result<Self> {
        TcpStream::try_clone(self)
    }
}

impl Transport for PipeStream {
    fn try_clone(&self) -> io::Result<Self> {
        Ok(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_serve::pipe::duplex;

    #[test]
    fn pipe_clones_share_the_stream_like_tcp_clones() {
        let (a, b) = duplex(64);
        let mut a2 = Transport::try_clone(&a).expect("clone");
        let mut b = b;
        a2.write_all(b"hi").expect("write via clone");
        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hi");
        // The original handle still works after the clone wrote.
        let mut a = a;
        a.write_all(b"yo").expect("write via original");
        b.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"yo");
    }
}

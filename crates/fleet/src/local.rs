//! An in-process fleet over in-memory pipes: N [`ShardServer`]s and one
//! [`FleetRouter`] wired with [`tn_serve::pipe::duplex`].
//!
//! This is the deterministic harness the integration tests, the bench
//! example, and `scripts/verify.sh` use — the full wire protocol runs
//! (framing, JSON payloads, snapshot heartbeats), but inside one
//! process with no sockets, so CI never flakes on ports and a
//! [`tn_telemetry::ManualClock`] can script staleness. It is also the
//! reference wiring for a real multi-process deployment: replace
//! `duplex` with a `TcpStream` per shard and the code is otherwise
//! identical (both satisfy [`crate::Transport`]).

use tn_chip::nscs::NetworkDeploySpec;
use tn_serve::pipe::duplex;
use tn_serve::{MetricsSnapshot, ServeBackend, ServeError};

use crate::router::{FleetConfig, FleetRouter};
use crate::shard::ShardServer;

use std::sync::Arc;
use tn_telemetry::MetricsSink;

/// Capacity of each in-memory pipe direction. Generous relative to
/// frame sizes so a bursty writer rarely parks, small enough that a
/// wedged reader exerts backpressure instead of ballooning memory.
const PIPE_CAPACITY: usize = 256 * 1024;

/// A router plus the shards it serves, owned together.
///
/// The router is held behind an [`Arc`] so a front-end (e.g.
/// `tn-gateway`'s `bind_backend`) can share it via
/// [`LocalFleet::router_arc`]; drop every shared handle before calling
/// [`LocalFleet::shutdown`].
#[derive(Debug)]
pub struct LocalFleet {
    router: Arc<FleetRouter>,
    shards: Vec<ShardServer>,
}

impl LocalFleet {
    /// Launch `n_shards` shard runtimes for `spec` (each built from
    /// `cfg.serve` — fleet homogeneity by construction) and connect a
    /// router over them. Snapshot heartbeats are discarded; see
    /// [`LocalFleet::launch_with_sink`] to collect them.
    ///
    /// # Errors
    ///
    /// Deployment/config errors from the shard runtimes, or handshake
    /// errors from the router.
    pub fn launch(
        spec: &NetworkDeploySpec,
        n_shards: usize,
        cfg: FleetConfig,
    ) -> Result<Self, ServeError> {
        Self::launch_with_sink(spec, n_shards, cfg, Arc::new(tn_telemetry::NullSink))
    }

    /// Like [`LocalFleet::launch`], forwarding every shard's snapshot
    /// heartbeats to `sink` as one aggregated `tn-telemetry/1` stream.
    ///
    /// # Errors
    ///
    /// See [`LocalFleet::launch`].
    pub fn launch_with_sink(
        spec: &NetworkDeploySpec,
        n_shards: usize,
        cfg: FleetConfig,
        sink: Arc<dyn MetricsSink>,
    ) -> Result<Self, ServeError> {
        if n_shards == 0 {
            return Err(ServeError::BadConfig(
                "a fleet needs at least one shard".to_string(),
            ));
        }
        let mut shards = Vec::with_capacity(n_shards);
        let mut conns = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (shard_end, router_end) = duplex(PIPE_CAPACITY);
            shards.push(ShardServer::host(spec, cfg.serve.clone(), shard_end)?);
            conns.push(router_end);
        }
        let router = Arc::new(FleetRouter::connect_with_sink(conns, cfg, sink)?);
        Ok(Self { router, shards })
    }

    /// The router (submit through it via [`tn_serve::ServeBackend`]).
    pub fn router(&self) -> &FleetRouter {
        &self.router
    }

    /// A shareable [`ServeBackend`] handle to the router, for binding a
    /// front-end over the fleet. All clones must be dropped (e.g. the
    /// gateway shut down) before [`LocalFleet::shutdown`].
    pub fn router_arc(&self) -> Arc<dyn ServeBackend> {
        Arc::clone(&self.router) as Arc<dyn ServeBackend>
    }

    /// Shard `i`'s server handle (heartbeat muting, introspection).
    pub fn shard(&self, i: usize) -> &ShardServer {
        &self.shards[i]
    }

    /// Number of shards launched.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Orderly fleet shutdown: the router drains every in-flight
    /// request and tells the shards to stop, the shards drain and shut
    /// their runtimes down (emitting their closing heartbeats), and the
    /// router folds those final snapshots into the aggregate
    /// [`MetricsSnapshot`] it returns alongside each shard's own final
    /// metrics.
    ///
    /// # Panics
    ///
    /// If a [`LocalFleet::router_arc`] handle is still alive — shut the
    /// front-end holding it down first.
    pub fn shutdown(self) -> (MetricsSnapshot, Vec<MetricsSnapshot>) {
        self.router.begin_shutdown();
        let shard_metrics: Vec<MetricsSnapshot> =
            self.shards.into_iter().map(ShardServer::join).collect();
        let router = Arc::try_unwrap(self.router)
            .expect("router_arc handles must be dropped before fleet shutdown");
        (router.finish(), shard_metrics)
    }
}

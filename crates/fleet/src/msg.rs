//! JSON payloads for the fleet frames.
//!
//! Everything on the wire is JSON text (parsed with the same strict
//! reader `tn-telemetry` uses for snapshot lines — the workspace builds
//! offline, so there is no serde_json). Floats are encoded with `{:?}`,
//! which prints the shortest decimal that round-trips, so a frame's
//! spike rates and a response's confidence survive the wire bit-exactly
//! — a requirement, since the fleet's contract is that its answer
//! stream is *bit-identical* to a solo runtime's.

use std::time::Duration;

use tn_serve::{Response, ServeError, ServedAs, SubmitRequest};
use tn_telemetry::json::{escape, parse, JsonValue};

/// The handshake schema tag; a router refuses a shard that does not
/// announce exactly this.
pub const SCHEMA: &str = "tn-fleet/1";

// ---------------------------------------------------------------------
// decode helpers
// ---------------------------------------------------------------------

fn want<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    want(v, key)?
        .as_u64()
        .ok_or_else(|| format!("{key:?} is not a non-negative integer"))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    Ok(get_u64(v, key)? as usize)
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    want(v, key)?
        .as_f64()
        .ok_or_else(|| format!("{key:?} is not a number"))
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, String> {
    Ok(want(v, key)?
        .as_str()
        .ok_or_else(|| format!("{key:?} is not a string"))?
        .to_string())
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    want(v, key)?
        .as_bool()
        .ok_or_else(|| format!("{key:?} is not a boolean"))
}

fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    want(v, key)?
        .as_array()
        .ok_or_else(|| format!("{key:?} is not an array"))
}

fn u64_array(v: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    get_arr(v, key)?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| format!("{key:?} holds a non-integer"))
        })
        .collect()
}

fn usize_array(v: &JsonValue, key: &str) -> Result<Vec<usize>, String> {
    Ok(u64_array(v, key)?.into_iter().map(|x| x as usize).collect())
}

fn f32_array(v: &JsonValue, key: &str) -> Result<Vec<f32>, String> {
    get_arr(v, key)?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|f| f as f32)
                .ok_or_else(|| format!("{key:?} holds a non-number"))
        })
        .collect()
}

fn string_array(v: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    get_arr(v, key)?
        .iter()
        .map(|x| {
            x.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{key:?} holds a non-string"))
        })
        .collect()
}

// ---------------------------------------------------------------------
// encode helpers
// ---------------------------------------------------------------------

fn json_usizes(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn json_u64s(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn json_f32s(xs: &[f32]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{:?}", f64::from(*x))).collect();
    format!("[{}]", items.join(","))
}

fn json_strings(xs: &[String]) -> String {
    let items: Vec<String> = xs.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", items.join(","))
}

// ---------------------------------------------------------------------
// Hello
// ---------------------------------------------------------------------

/// A shard's opening announcement: protocol schema plus everything a
/// router needs for client-side validation, introspection endpoints,
/// and energy attribution — so steady-state dispatch never needs a
/// round-trip to ask a shard about itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Input channels (tenant model 0).
    pub n_inputs: usize,
    /// Classes voted on (tenant model 0).
    pub n_classes: usize,
    /// Per tenant model `(n_inputs, n_classes)`.
    pub models: Vec<(usize, usize)>,
    /// Replica count in force at connect time.
    pub replicas: usize,
    /// Whether the shard serves multiple tenants on one packed chip.
    pub packed: bool,
    /// Kernel fusion width in force at connect time.
    pub kernel_batch: usize,
    /// Live ticks-per-frame per request class.
    pub spf: Vec<usize>,
    /// Quality tier names, in config order.
    pub tiers: Vec<String>,
    /// The shard's submission queue capacity.
    pub queue_capacity: usize,
    /// Chip cores occupied by one worker's deployment (drives the
    /// router's [`tn_chip::energy`] attribution).
    pub cores: usize,
}

impl Hello {
    /// Encode as the Hello frame payload.
    pub fn encode(&self) -> String {
        let models: Vec<String> = self
            .models
            .iter()
            .map(|(i, c)| format!("{{\"n_inputs\":{i},\"n_classes\":{c}}}"))
            .collect();
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"n_inputs\":{},\"n_classes\":{},\"models\":[{}],\
             \"replicas\":{},\"packed\":{},\"kernel_batch\":{},\"spf\":{},\"tiers\":{},\
             \"queue_capacity\":{},\"cores\":{}}}",
            self.n_inputs,
            self.n_classes,
            models.join(","),
            self.replicas,
            self.packed,
            self.kernel_batch,
            json_usizes(&self.spf),
            json_strings(&self.tiers),
            self.queue_capacity,
            self.cores,
        )
    }

    /// Parse a Hello frame payload, refusing foreign schemas.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = parse(text).map_err(|e| e.to_string())?;
        let schema = get_str(&v, "schema")?;
        if schema != SCHEMA {
            return Err(format!("shard speaks {schema:?}, this router speaks {SCHEMA:?}"));
        }
        let models = get_arr(&v, "models")?
            .iter()
            .map(|m| Ok((get_usize(m, "n_inputs")?, get_usize(m, "n_classes")?)))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            n_inputs: get_usize(&v, "n_inputs")?,
            n_classes: get_usize(&v, "n_classes")?,
            models,
            replicas: get_usize(&v, "replicas")?,
            packed: get_bool(&v, "packed")?,
            kernel_batch: get_usize(&v, "kernel_batch")?,
            spf: usize_array(&v, "spf")?,
            tiers: string_array(&v, "tiers")?,
            queue_capacity: get_usize(&v, "queue_capacity")?,
            cores: get_usize(&v, "cores")?,
        })
    }
}

// ---------------------------------------------------------------------
// Req
// ---------------------------------------------------------------------

/// Encode one dispatched request. `seq` is the *router's* global
/// sequence number — the determinism key the shard pins via
/// [`SubmitRequest::at_seq`].
pub fn encode_req(seq: u64, request: &SubmitRequest) -> String {
    let quality = match &request.quality {
        Some(q) => format!("\"{}\"", escape(q)),
        None => "null".to_string(),
    };
    format!(
        "{{\"seq\":{seq},\"frame\":{},\"model\":{},\"class\":{},\"quality\":{quality}}}",
        json_f32s(&request.frame),
        request.model,
        request.class,
    )
}

/// Parse a Req frame payload into `(seq, request)`; the returned
/// request already carries `at_seq(seq)`.
///
/// # Errors
///
/// A human-readable description of the first malformed field.
pub fn parse_req(text: &str) -> Result<(u64, SubmitRequest), String> {
    let v = parse(text).map_err(|e| e.to_string())?;
    let seq = get_u64(&v, "seq")?;
    let mut request = SubmitRequest::new(f32_array(&v, "frame")?)
        .model(get_usize(&v, "model")?)
        .class(get_usize(&v, "class")?)
        .at_seq(seq);
    match want(&v, "quality")? {
        JsonValue::Null => {}
        q => {
            request = request.quality(
                q.as_str()
                    .ok_or_else(|| "\"quality\" is not a string or null".to_string())?,
            );
        }
    }
    Ok((seq, request))
}

// ---------------------------------------------------------------------
// Resp
// ---------------------------------------------------------------------

/// Encode a served [`Response`]. Latency crosses the wire as the
/// shard's own measurement; the router overwrites it with end-to-end
/// router-side latency before completing the caller's handle (wire and
/// queueing time belong in what the caller observes).
pub fn encode_resp(r: &Response) -> String {
    let tier = match r.tier() {
        Some(t) => format!("\"{}\"", escape(t)),
        None => "null".to_string(),
    };
    format!(
        "{{\"seq\":{},\"predicted\":{},\"votes\":{},\"replica_predictions\":{},\
         \"agreement\":{:?},\"class\":{},\"model\":{},\"spf\":{},\"tier\":{tier},\
         \"confidence\":{:?},\"escalated\":{},\"worker\":{},\"ticks\":{},\"latency_ns\":{}}}",
        r.seq,
        r.predicted,
        json_u64s(&r.votes),
        json_usizes(&r.replica_predictions),
        f64::from(r.agreement),
        r.class(),
        r.model(),
        r.spf(),
        f64::from(r.confidence()),
        r.escalated(),
        r.worker,
        r.ticks,
        r.latency.as_nanos() as u64,
    )
}

/// Parse a Resp frame payload back into a [`Response`].
///
/// # Errors
///
/// A human-readable description of the first malformed field.
pub fn parse_resp(text: &str) -> Result<Response, String> {
    let v = parse(text).map_err(|e| e.to_string())?;
    let mut served = ServedAs::new(
        get_usize(&v, "class")?,
        get_usize(&v, "model")?,
        get_usize(&v, "spf")?,
    )
    .with_confidence(get_f64(&v, "confidence")? as f32)
    .with_escalated(get_bool(&v, "escalated")?);
    match want(&v, "tier")? {
        JsonValue::Null => {}
        t => {
            served = served.with_tier(
                t.as_str()
                    .ok_or_else(|| "\"tier\" is not a string or null".to_string())?,
            );
        }
    }
    Ok(Response {
        seq: get_u64(&v, "seq")?,
        predicted: get_usize(&v, "predicted")?,
        votes: u64_array(&v, "votes")?,
        replica_predictions: usize_array(&v, "replica_predictions")?,
        agreement: get_f64(&v, "agreement")? as f32,
        served,
        worker: get_usize(&v, "worker")?,
        ticks: get_u64(&v, "ticks")?,
        latency: Duration::from_nanos(get_u64(&v, "latency_ns")?),
    })
}

// ---------------------------------------------------------------------
// Err
// ---------------------------------------------------------------------

/// Encode a request-level failure for `seq`.
///
/// Every [`ServeError`] variant gets a stable wire code plus its
/// structured fields, so the router reconstructs the *same variant* the
/// shard raised — a fleet caller matches on [`ServeError`] exactly as a
/// solo caller would. The two variants carrying non-reconstructible
/// payloads (`Deploy`'s error struct) travel as their rendering.
pub fn encode_err(seq: u64, e: &ServeError) -> String {
    let (code, data) = match e {
        ServeError::Deploy(d) => ("deploy", format!("{{\"detail\":\"{}\"}}", escape(&d.to_string()))),
        ServeError::BadConfig(m) => ("bad_config", format!("{{\"detail\":\"{}\"}}", escape(m))),
        ServeError::QueueFull => ("queue_full", "{}".to_string()),
        ServeError::ShuttingDown => ("shutting_down", "{}".to_string()),
        ServeError::Unavailable(m) => {
            ("unavailable", format!("{{\"detail\":\"{}\"}}", escape(m)))
        }
        ServeError::WaitTimeout => ("wait_timeout", "{}".to_string()),
        ServeError::BadInput { expected, got } => (
            "bad_input",
            format!("{{\"expected\":{expected},\"got\":{got}}}"),
        ),
        ServeError::InputOutOfRange { channel, value } => (
            "input_out_of_range",
            format!("{{\"channel\":{channel},\"value\":{:?}}}", f64::from(*value)),
        ),
        ServeError::UnknownClass { class, classes } => (
            "unknown_class",
            format!("{{\"class\":{class},\"classes\":{classes}}}"),
        ),
        ServeError::UnknownModel { model, models } => (
            "unknown_model",
            format!("{{\"model\":{model},\"models\":{models}}}"),
        ),
        ServeError::UnknownQuality { quality, tiers } => (
            "unknown_quality",
            format!(
                "{{\"quality\":\"{}\",\"tiers\":{}}}",
                escape(quality),
                json_strings(tiers)
            ),
        ),
        ServeError::Pack(m) => ("pack", format!("{{\"detail\":\"{}\"}}", escape(m))),
        // ServeError is #[non_exhaustive]; ship future variants as their
        // rendering rather than failing to serve an error at all.
        other => (
            "other",
            format!("{{\"detail\":\"{}\"}}", escape(&other.to_string())),
        ),
    };
    format!(
        "{{\"seq\":{seq},\"code\":\"{code}\",\"message\":\"{}\",\"data\":{data}}}",
        escape(&e.to_string())
    )
}

/// Parse an Err frame payload into `(seq, error)`.
///
/// # Errors
///
/// A human-readable description of the first malformed field.
pub fn parse_err(text: &str) -> Result<(u64, ServeError), String> {
    let v = parse(text).map_err(|e| e.to_string())?;
    let seq = get_u64(&v, "seq")?;
    let code = get_str(&v, "code")?;
    let data = want(&v, "data")?;
    let error = match code.as_str() {
        "queue_full" => ServeError::QueueFull,
        "shutting_down" => ServeError::ShuttingDown,
        "unavailable" => ServeError::Unavailable(get_str(data, "detail")?),
        "wait_timeout" => ServeError::WaitTimeout,
        "bad_input" => ServeError::BadInput {
            expected: get_usize(data, "expected")?,
            got: get_usize(data, "got")?,
        },
        "input_out_of_range" => ServeError::InputOutOfRange {
            channel: get_usize(data, "channel")?,
            value: get_f64(data, "value")? as f32,
        },
        "unknown_class" => ServeError::UnknownClass {
            class: get_usize(data, "class")?,
            classes: get_usize(data, "classes")?,
        },
        "unknown_model" => ServeError::UnknownModel {
            model: get_usize(data, "model")?,
            models: get_usize(data, "models")?,
        },
        "unknown_quality" => ServeError::UnknownQuality {
            quality: get_str(data, "quality")?,
            tiers: string_array(data, "tiers")?,
        },
        "pack" => ServeError::Pack(get_str(data, "detail")?),
        "bad_config" => ServeError::BadConfig(get_str(data, "detail")?),
        // `deploy` cannot rebuild its error struct from a string; carry
        // the rendering in the closest reconstructible variant.
        "deploy" => ServeError::BadConfig(format!(
            "shard deploy failure: {}",
            get_str(data, "detail")?
        )),
        _ => ServeError::BadConfig(get_str(&v, "message")?),
    };
    Ok((seq, error))
}

// ---------------------------------------------------------------------
// Ctrl / Ack
// ---------------------------------------------------------------------

/// A router → shard control action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ctrl {
    /// Rebuild the shard's replica set at this count (the fleet's
    /// rolling-rescale step; maps to
    /// `ServeRuntime::apply_control(SetReplicas)`).
    SetReplicas(usize),
    /// Stop accepting requests, drain, and close the connection.
    Shutdown,
}

impl Ctrl {
    /// Encode as the Ctrl frame payload.
    pub fn encode(&self) -> String {
        match self {
            Ctrl::SetReplicas(r) => format!("{{\"op\":\"set_replicas\",\"replicas\":{r}}}"),
            Ctrl::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        }
    }

    /// Parse a Ctrl frame payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = parse(text).map_err(|e| e.to_string())?;
        match get_str(&v, "op")?.as_str() {
            "set_replicas" => Ok(Ctrl::SetReplicas(get_usize(&v, "replicas")?)),
            "shutdown" => Ok(Ctrl::Shutdown),
            op => Err(format!("unknown control op {op:?}")),
        }
    }
}

/// A shard's acknowledgement of one [`Ctrl`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// The acknowledged op (`"set_replicas"` / `"shutdown"`).
    pub op: String,
    /// `None` on success, the shard-side error rendering on failure.
    pub error: Option<String>,
}

impl Ack {
    /// Encode as the Ack frame payload.
    pub fn encode(&self) -> String {
        match &self.error {
            None => format!("{{\"op\":\"{}\",\"ok\":true,\"error\":null}}", escape(&self.op)),
            Some(e) => format!(
                "{{\"op\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
                escape(&self.op),
                escape(e)
            ),
        }
    }

    /// Parse an Ack frame payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = parse(text).map_err(|e| e.to_string())?;
        let op = get_str(&v, "op")?;
        let ok = get_bool(&v, "ok")?;
        let error = match want(&v, "error")? {
            JsonValue::Null => None,
            e => Some(
                e.as_str()
                    .ok_or_else(|| "\"error\" is not a string or null".to_string())?
                    .to_string(),
            ),
        };
        if ok == error.is_some() {
            return Err("ack \"ok\" contradicts \"error\"".to_string());
        }
        Ok(Self { op, error })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_and_checks_schema() {
        let hello = Hello {
            n_inputs: 4,
            n_classes: 3,
            models: vec![(4, 3), (2, 2)],
            replicas: 2,
            packed: true,
            kernel_batch: 8,
            spf: vec![8, 16],
            tiers: vec!["fast".to_string(), "certain".to_string()],
            queue_capacity: 256,
            cores: 6,
        };
        assert_eq!(Hello::parse(&hello.encode()), Ok(hello));
        let foreign = "{\"schema\":\"tn-fleet/9\",\"n_inputs\":1}";
        assert!(Hello::parse(foreign).expect_err("schema").contains("tn-fleet/9"));
    }

    #[test]
    fn req_round_trips_with_exact_floats() {
        // 0.1 is not representable; the shortest-repr encoding must
        // bring back the identical f32 bits.
        let req = SubmitRequest::new(vec![0.1, 1.0, 0.0, 0.333_333_34])
            .model(1)
            .class(2)
            .quality("fast");
        let (seq, parsed) = parse_req(&encode_req(17, &req)).expect("parse");
        assert_eq!(seq, 17);
        assert_eq!(parsed.seq, Some(17), "wire seq pins the request seq");
        assert_eq!(parsed.frame, req.frame, "f32s must round-trip bit-exactly");
        assert_eq!((parsed.model, parsed.class), (1, 2));
        assert_eq!(parsed.quality.as_deref(), Some("fast"));

        let bare = SubmitRequest::new(vec![0.5]);
        let (_, parsed) = parse_req(&encode_req(0, &bare)).expect("parse");
        assert_eq!(parsed.quality, None);
    }

    #[test]
    fn resp_round_trips_every_field() {
        let r = Response {
            seq: 41,
            predicted: 2,
            votes: vec![1, 0, 7],
            replica_predictions: vec![2, 2, 0],
            agreement: 2.0 / 3.0,
            served: ServedAs::new(1, 0, 16)
                .with_tier("certain")
                .with_confidence(0.875)
                .with_escalated(true),
            worker: 3,
            ticks: 17,
            latency: Duration::from_nanos(12_345),
        };
        let parsed = parse_resp(&encode_resp(&r)).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn every_error_variant_round_trips_to_the_same_variant() {
        let cases = vec![
            ServeError::QueueFull,
            ServeError::ShuttingDown,
            ServeError::Unavailable("no healthy shard".to_string()),
            ServeError::WaitTimeout,
            ServeError::BadInput { expected: 4, got: 2 },
            ServeError::InputOutOfRange { channel: 1, value: 1.5 },
            ServeError::UnknownClass { class: 9, classes: 2 },
            ServeError::UnknownModel { model: 3, models: 1 },
            ServeError::UnknownQuality {
                quality: "warp".to_string(),
                tiers: vec!["fast".to_string()],
            },
            ServeError::Pack("tenant 1 does not fit".to_string()),
            ServeError::BadConfig("replicas must be >= 1".to_string()),
        ];
        for e in cases {
            let (seq, back) = parse_err(&encode_err(7, &e)).expect("parse");
            assert_eq!(seq, 7);
            assert_eq!(back, e);
        }
    }

    #[test]
    fn ctrl_and_ack_round_trip() {
        for c in [Ctrl::SetReplicas(3), Ctrl::Shutdown] {
            assert_eq!(Ctrl::parse(&c.encode()), Ok(c.clone()));
        }
        for a in [
            Ack { op: "set_replicas".to_string(), error: None },
            Ack {
                op: "set_replicas".to_string(),
                error: Some("replicas out of bounds".to_string()),
            },
        ] {
            assert_eq!(Ack::parse(&a.encode()), Ok(a.clone()));
        }
        assert!(Ack::parse("{\"op\":\"x\",\"ok\":true,\"error\":\"boom\"}").is_err());
    }
}

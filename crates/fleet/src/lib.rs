//! `tn-fleet` — a sharded replica fleet over `tn-telemetry/1`.
//!
//! One `tn-serve` runtime scales to the cores of one machine. This
//! crate scales *out*: shard workers each host a full
//! [`tn_serve::ServeRuntime`] replica set behind a std-only framed
//! protocol, and a router tier dispatches requests across them while
//! keeping the fleet's answer stream **bit-identical to a solo
//! runtime** — the paper's accuracy/occupation trade-offs keep meaning
//! exactly what they meant on one chip.
//!
//! # Topology
//!
//! ```text
//!                       ┌───────────────────────────┐
//!  ServeBackend         │ FleetRouter               │
//!  (gateway, tests) ──► │  · owns the global seq    │
//!                       │  · consistent-hash /      │
//!                       │    least-loaded dispatch  │
//!                       │  · health by heartbeat    │
//!                       │  · rolling rescale        │
//!                       └──┬─────────┬──────────┬───┘
//!                 framed   │         │          │   [kind u8][len u32][payload]
//!                 streams  ▼         ▼          ▼
//!                  ┌──────────┐ ┌──────────┐ ┌──────────┐
//!                  │ Shard 0  │ │ Shard 1  │ │ Shard N  │   ShardServer
//!                  │ ServeRt  │ │ ServeRt  │ │ ServeRt  │   (same spec+config)
//!                  └──────────┘ └──────────┘ └──────────┘
//! ```
//!
//! * **No new wire formats**: request/response payloads are JSON
//!   (parsed by `tn-telemetry`'s strict reader), and shard health rides
//!   the *existing* `tn-telemetry/1` snapshot schema — every snapshot a
//!   shard's runtime exports is framed to the router verbatim
//!   ([`crate::frame::FrameKind::Snap`]) and doubles as the heartbeat.
//!   The aggregated trail still passes `snapshot_check`.
//! * **Determinism**: the router owns the fleet-global sequence counter
//!   and pins each request's seq via [`tn_serve::SubmitRequest::at_seq`];
//!   a response is a pure function of `(seed, seq, spf)`, so shard
//!   choice, re-routing, fleet width, and [`FleetRouter::set_replicas`]
//!   rolling rescales are invisible in the answer stream.
//! * **Transports**: anything [`Transport`] — `TcpStream` for
//!   multi-process fleets, [`tn_serve::pipe::duplex`] for the
//!   deterministic in-process [`LocalFleet`] harness.
//!
//! See `docs/FLEET.md` for the protocol reference, health rules, and
//! the rolling-rescale bit-identity contract.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod frame;
mod local;
pub mod msg;
mod router;
mod shard;
mod transport;

pub use local::LocalFleet;
pub use router::{DispatchPolicy, FleetConfig, FleetRouter};
pub use shard::ShardServer;
pub use transport::Transport;

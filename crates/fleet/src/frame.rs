//! The fleet wire framing: `[kind u8][len u32 LE][payload]`.
//!
//! Deliberately minimal — the interesting structure lives in the JSON
//! payloads ([`crate::msg`]) and the telemetry lines riding
//! [`FrameKind::Snap`] frames, which are verbatim `tn-telemetry/1`
//! snapshot lines (the fleet reuses the existing snapshot schema as its
//! heartbeat rather than inventing a second health wire format). The
//! framing layer only answers "where does one message end?" over a byte
//! stream (TCP socket or in-memory pipe).

use std::io::{self, Read, Write};

/// Refuse frames larger than this (16 MiB): a corrupt or hostile length
/// prefix must not trigger an unbounded allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// What a frame's payload means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Shard → router, once at connection start: the shard's identity
    /// and serving shape (`tn-fleet/1` handshake).
    Hello = 1,
    /// Router → shard: one classify request.
    Req = 2,
    /// Shard → router: a served answer.
    Resp = 3,
    /// Shard → router: a request-level error.
    Err = 4,
    /// Shard → router: one `tn-telemetry/1` snapshot line, verbatim.
    /// Doubles as the fleet heartbeat.
    Snap = 5,
    /// Router → shard: a control action (rescale, shutdown).
    Ctrl = 6,
    /// Shard → router: acknowledgement of a [`FrameKind::Ctrl`] frame.
    Ack = 7,
}

impl FrameKind {
    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => Self::Hello,
            2 => Self::Req,
            3 => Self::Resp,
            4 => Self::Err,
            5 => Self::Snap,
            6 => Self::Ctrl,
            7 => Self::Ack,
            _ => return None,
        })
    }
}

/// Write one frame. The 5-byte header and payload go out as a single
/// `write_all` each; callers serialize whole-frame writes (the fleet
/// holds a per-connection write lock) so frames never interleave.
pub fn write_frame(
    w: &mut (impl Write + ?Sized),
    kind: FrameKind,
    payload: &[u8],
) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds {MAX_FRAME_LEN}", payload.len()),
        ));
    }
    let mut header = [0u8; 5];
    header[0] = kind as u8;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// `UnexpectedEof` for a connection cut mid-frame, `InvalidData` for an
/// unknown kind byte or an over-limit length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(FrameKind, Vec<u8>)>> {
    let mut header = [0u8; 5];
    // Distinguish EOF-before-any-byte (clean close) from EOF mid-header.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame-header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let kind = FrameKind::from_byte(header[0]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame kind byte {}", header[0]),
        )
    })?;
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Hello, b"{\"a\":1}").expect("write");
        write_frame(&mut buf, FrameKind::Snap, b"").expect("write empty payload");
        write_frame(&mut buf, FrameKind::Resp, &[0xFF; 300]).expect("write binary");
        let mut r = &buf[..];
        let (k, p) = read_frame(&mut r).expect("read").expect("frame");
        assert_eq!((k, p.as_slice()), (FrameKind::Hello, &b"{\"a\":1}"[..]));
        let (k, p) = read_frame(&mut r).expect("read").expect("frame");
        assert_eq!((k, p.len()), (FrameKind::Snap, 0));
        let (k, p) = read_frame(&mut r).expect("read").expect("frame");
        assert_eq!((k, p.len()), (FrameKind::Resp, 300));
        assert!(read_frame(&mut r).expect("clean eof").is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_a_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Req, b"0123456789").expect("write");
        // Cut inside the header, then inside the payload.
        for cut in [3, 8] {
            let mut r = &buf[..cut];
            let err = read_frame(&mut r).expect_err("truncated frame");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn hostile_lengths_and_kinds_are_rejected() {
        // Unknown kind byte.
        let mut r = &[99u8, 0, 0, 0, 0][..];
        assert_eq!(
            read_frame(&mut r).expect_err("bad kind").kind(),
            io::ErrorKind::InvalidData
        );
        // Length prefix claiming 4 GiB must fail before allocating.
        let mut r = &[1u8, 0xFF, 0xFF, 0xFF, 0xFF][..];
        assert_eq!(
            read_frame(&mut r).expect_err("oversized").kind(),
            io::ErrorKind::InvalidData
        );
        // Writer enforces the same cap.
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut Vec::new(), FrameKind::Req, &big).is_err());
    }
}

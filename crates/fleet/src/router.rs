//! The router tier: one [`FleetRouter`] dispatching over N shard
//! connections.
//!
//! # Determinism (why a router can exist at all)
//!
//! A `tn-serve` response is a pure function of `(cfg.seed, seq, spf)` —
//! never of worker count, batching, or scheduling. The router owns the
//! global sequence counter and pins every dispatched request's seq via
//! [`SubmitRequest::at_seq`], so *any* shard built from the same
//! `(spec, config)` serves request `k` bit-identically to a solo
//! runtime's `k`-th request. Shard choice, re-routing after a
//! connection loss, and fleet width are therefore invisible in the
//! answer stream; dispatch policy is purely a load/latency decision.
//!
//! # Health
//!
//! Shards heartbeat by telemetry: every `tn-telemetry/1` snapshot a
//! shard exports rides a Snap frame, and the router marks its arrival
//! on a [`FreshnessTracker`] keyed to the *router's* clock. A shard
//! whose snapshots stop arriving (hung, partitioned, or paused) goes
//! stale after [`FleetConfig::staleness`] and stops receiving new
//! dispatches — while its already-admitted requests keep completing if
//! the connection still delivers Resp frames. A lost connection marks
//! the shard dead immediately and re-dispatches its in-flight requests
//! to surviving shards (safe: same seq ⇒ same answer), bounded by
//! [`FleetConfig::max_retries`]; each re-dispatch prefers a shard other
//! than the one that just failed. When nothing can serve a request the
//! terminal error is [`ServeError::ShuttingDown`] only during an actual
//! drain, [`ServeError::Unavailable`] otherwise.
//!
//! # Rolling rescale
//!
//! [`FleetRouter::set_replicas`] rescales the fleet one shard at a
//! time with *epoch-swap barrier* semantics: new submissions are held
//! for already-swapped shards only, each shard drains its in-flight
//! requests before swapping, and the whole roll is equivalent to a solo
//! runtime applying `SetReplicas` between two consecutive sequence
//! numbers — the answer stream stays bit-identical across the rescale.
//! Only submitter threads ever wait on the barrier; a shard reader
//! thread that needs to re-dispatch a retried request mid-roll *parks*
//! it instead (a blocked reader would stall the very drain the roll is
//! waiting on), and the roll thread re-dispatches parked requests after
//! each swap.
//! One edge is weaker than solo: a connection lost *mid-roll* may
//! re-route a pre-barrier request to an already-swapped shard, serving
//! it at the new replica count.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tn_chip::energy::EnergyReport;
use tn_chip::nscs::ChipCounterExport;
use tn_serve::{
    Completer, MetricsSnapshot, QueueStats, RequestHandle, ServeBackend, ServeConfig, ServeError,
    SubmitRequest,
};
use tn_telemetry::{Clock, FreshnessTracker, MetricsSink, MonotonicClock, NullSink, Snapshot};

use crate::frame::{read_frame, write_frame, FrameKind};
use crate::msg::{encode_req, parse_err, parse_resp, Ack, Ctrl, Hello};
use crate::transport::Transport;

/// How the router picks a shard for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Rendezvous (highest-random-weight) hashing on the request seq:
    /// stable, coordination-free spreading where a shard's death only
    /// remaps the requests that hashed to it.
    #[default]
    ConsistentHash,
    /// Send to the shard with the lowest live `serve.queue_fill` gauge
    /// (from its snapshot heartbeats), breaking ties by router-side
    /// in-flight count, then by index.
    LeastLoaded,
}

/// Router configuration. [`FleetConfig::serve`] must match the config
/// every shard was built with — the bit-identity contract is
/// conditional on fleet homogeneity, and the router checks what it can
/// see of it from the shards' [`Hello`] announcements.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The [`ServeConfig`] the shards run (introspection surface for
    /// front-ends; the router itself serves nothing).
    pub serve: ServeConfig,
    /// Dispatch policy (default [`DispatchPolicy::ConsistentHash`]).
    pub policy: DispatchPolicy,
    /// Mark a shard unhealthy when its last snapshot heartbeat is older
    /// than this (router-clock time). `None` (the default) disables
    /// staleness health — required when shards run without
    /// [`tn_serve::ServeConfig::telemetry`], since they then emit no
    /// heartbeats at all.
    pub staleness: Option<Duration>,
    /// How many times one request may be re-dispatched after retryable
    /// shard errors (`QueueFull`, `ShuttingDown`) or connection loss
    /// (default 2).
    pub max_retries: usize,
    /// Clock for heartbeat arrival marks and latency accounting.
    /// Deterministic tests inject a [`tn_telemetry::ManualClock`].
    pub clock: Arc<dyn Clock>,
}

impl FleetConfig {
    /// Defaults: consistent-hash dispatch, staleness health off, two
    /// retries, monotonic wall clock.
    pub fn new(serve: ServeConfig) -> Self {
        Self {
            serve,
            policy: DispatchPolicy::default(),
            staleness: None,
            max_retries: 2,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Choose the dispatch policy.
    #[must_use]
    pub fn policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable snapshot-staleness health with this age budget.
    #[must_use]
    pub fn staleness(mut self, max_age: Duration) -> Self {
        self.staleness = Some(max_age);
        self
    }

    /// Bound per-request re-dispatch attempts.
    #[must_use]
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Inject a clock (deterministic staleness tests).
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One request the router has written to a shard and not yet seen
/// answered. Kept re-dispatchable: the original request rides along so
/// a connection loss can replay it (same seq ⇒ same answer).
#[derive(Debug)]
struct Pending {
    completer: Completer,
    request: SubmitRequest,
    retries: usize,
    start_ns: u64,
}

struct Shard {
    writer: Mutex<Box<dyn Write + Send>>,
    pending: Mutex<HashMap<u64, Pending>>,
    /// Signalled whenever `pending` may have emptied (roll/shutdown
    /// drains wait on it).
    drained: Condvar,
    alive: AtomicBool,
    /// Died *before* the fleet began shutting down (a lost connection,
    /// not an orderly close). Failed shards are excluded from the
    /// fleet's powered-core attribution; shards that merely closed
    /// during shutdown still count for their served lifetime.
    failed: AtomicBool,
    fresh: FreshnessTracker,
    /// Latest `serve.queue_fill` gauge (f64 bits) from heartbeats.
    queue_fill: AtomicU64,
    /// Live chip cores this shard keeps powered. Seeded from the
    /// connect-time `Hello`, then tracked: every heartbeat's
    /// `serve.cores` gauge overwrites it, and a successful rolling
    /// rescale refreshes it arithmetically (cores scale with replicas),
    /// so energy attribution follows the fleet through rescales even on
    /// shards running without telemetry.
    cores: AtomicU64,
    /// Router-side accepted-not-answered count (live, unlike the gauge).
    in_flight: AtomicU64,
    latest: Mutex<Option<Snapshot>>,
    ack: Mutex<Option<Ack>>,
    ack_cv: Condvar,
    /// Rendezvous-hash salt (a pure function of the shard index, so
    /// reconnecting fleets hash identically).
    salt: u64,
}

/// A request held back during a roll because no swapped shard was
/// dispatch-eligible and the caller was a thread that must not block
/// (a reader). The roll thread re-dispatches these after each swap.
struct Parked {
    seq: u64,
    request: SubmitRequest,
    completer: Completer,
    retries: usize,
    start_ns: u64,
    skip: Option<usize>,
}

struct Roll {
    active: bool,
    swapped: Vec<bool>,
    /// Requests parked by non-blocking dispatchers mid-roll; guarded by
    /// the same mutex as the roll flags so a park can never race the
    /// roll's end (parking requires observing `active == true` under
    /// the lock).
    parked: Vec<Parked>,
}

struct Inner {
    cfg: FleetConfig,
    hello: Hello,
    shards: Vec<Shard>,
    next_seq: AtomicU64,
    live_replicas: AtomicUsize,
    shutting_down: AtomicBool,
    roll: Mutex<Roll>,
    /// Signalled on swap progress and membership changes; dispatchers
    /// blocked mid-roll wait here.
    roll_cv: Condvar,
    sink: Arc<dyn MetricsSink>,
    started_ns: u64,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    retried: AtomicU64,
    agreement_micros: AtomicU64,
    latency: Histogram,
}

/// Log2-bucketed latency histogram: enough for p50/p90/p99 at ≤ 2×
/// resolution without unbounded memory.
struct Histogram {
    buckets: Vec<AtomicU64>,
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: (0..64).map(|_| AtomicU64::new(0)).collect(),
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn record(&self, ns: u64) {
        let k = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[k].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn quantile(&self, q: f64) -> Duration {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket k holds [2^k, 2^(k+1)); report the midpoint.
                return Duration::from_nanos((1u64 << k) + (1u64 << k) / 2);
            }
        }
        Duration::ZERO
    }

    fn mean(&self) -> Duration {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed) / count)
    }
}

/// A fleet of shard connections behind one [`ServeBackend`] face.
pub struct FleetRouter {
    inner: Arc<Inner>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for FleetRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRouter")
            .field("shards", &self.inner.shards.len())
            .field("policy", &self.inner.cfg.policy)
            .finish_non_exhaustive()
    }
}

impl FleetRouter {
    /// Connect over already-established shard connections, discarding
    /// snapshots (see [`FleetRouter::connect_with_sink`]).
    ///
    /// # Errors
    ///
    /// See [`FleetRouter::connect_with_sink`].
    pub fn connect<T: Transport>(conns: Vec<T>, cfg: FleetConfig) -> Result<Self, ServeError> {
        Self::connect_with_sink(conns, cfg, Arc::new(NullSink))
    }

    /// Connect over already-established shard connections; every shard
    /// snapshot heartbeat is forwarded to `sink`, so the fleet's
    /// aggregated telemetry trail is one `tn-telemetry/1` stream
    /// (`snapshot_check` accepts it: the schema never required ordered
    /// seqs across producers).
    ///
    /// Each connection must open with the shard's [`Hello`]; all shards
    /// must announce the same shape (the visible part of the
    /// homogeneity contract).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] on an empty fleet, a handshake/read
    /// failure, a foreign schema, shards that disagree about their
    /// shape, or a shard hosting a **packed** multi-tenant runtime —
    /// packed runtimes key answers by shard-local per-model counters,
    /// so fleet dispatch over them would silently break the bit-
    /// identity contract.
    pub fn connect_with_sink<T: Transport>(
        conns: Vec<T>,
        cfg: FleetConfig,
        sink: Arc<dyn MetricsSink>,
    ) -> Result<Self, ServeError> {
        if conns.is_empty() {
            return Err(ServeError::BadConfig(
                "a fleet needs at least one shard connection".to_string(),
            ));
        }
        let now = cfg.clock.now_ns();
        let max_age_ns = cfg
            .staleness
            .map_or(u64::MAX, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        let mut hello: Option<Hello> = None;
        let mut shards = Vec::with_capacity(conns.len());
        let mut read_halves = Vec::with_capacity(conns.len());
        for (i, mut conn) in conns.into_iter().enumerate() {
            let (kind, payload) = read_frame(&mut conn)
                .map_err(|e| ServeError::BadConfig(format!("shard {i} handshake read: {e}")))?
                .ok_or_else(|| {
                    ServeError::BadConfig(format!("shard {i} closed before its Hello"))
                })?;
            if kind != FrameKind::Hello {
                return Err(ServeError::BadConfig(format!(
                    "shard {i} opened with {kind:?}, expected Hello"
                )));
            }
            let h = Hello::parse(&String::from_utf8_lossy(&payload))
                .map_err(|e| ServeError::BadConfig(format!("shard {i} hello: {e}")))?;
            // A packed runtime keys each tenant's answers by its own
            // per-model submission counter, not the pinned seq — which
            // shard a request lands on would change the answer. Refuse
            // up front instead of silently voiding the bit-identity
            // contract; packed tenants are served by a solo runtime
            // (possibly behind a gateway), not a fleet.
            if h.packed {
                return Err(ServeError::BadConfig(format!(
                    "shard {i} hosts a packed multi-tenant runtime; packed runtimes key \
                     answers by shard-local per-model counters, so a fleet over them \
                     cannot keep the answer stream bit-identical — serve packed tenants \
                     from a solo runtime instead"
                )));
            }
            let shard_cores = h.cores as u64;
            match &hello {
                None => hello = Some(h),
                Some(first) if *first != h => {
                    return Err(ServeError::BadConfig(format!(
                        "shard {i} announces a different shape than shard 0; \
                         a fleet must be built from one (spec, config)"
                    )));
                }
                Some(_) => {}
            }
            let write_half = conn.try_clone().map_err(|e| {
                ServeError::BadConfig(format!("shard {i} transport clone failed: {e}"))
            })?;
            shards.push(Shard {
                writer: Mutex::new(Box::new(write_half)),
                pending: Mutex::new(HashMap::new()),
                drained: Condvar::new(),
                alive: AtomicBool::new(true),
                failed: AtomicBool::new(false),
                fresh: FreshnessTracker::new(max_age_ns, now),
                queue_fill: AtomicU64::new(0f64.to_bits()),
                cores: AtomicU64::new(shard_cores),
                in_flight: AtomicU64::new(0),
                latest: Mutex::new(None),
                ack: Mutex::new(None),
                ack_cv: Condvar::new(),
                salt: splitmix64(i as u64 + 1),
            });
            read_halves.push(conn);
        }
        let hello = hello.expect("non-empty fleet");
        let n_shards = shards.len();
        let inner = Arc::new(Inner {
            live_replicas: AtomicUsize::new(hello.replicas),
            hello,
            shards,
            next_seq: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            roll: Mutex::new(Roll {
                active: false,
                swapped: vec![false; n_shards],
                parked: Vec::new(),
            }),
            roll_cv: Condvar::new(),
            sink,
            started_ns: now,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            agreement_micros: AtomicU64::new(0),
            latency: Histogram::new(),
            cfg,
        });
        let readers = read_halves
            .into_iter()
            .enumerate()
            .map(|(i, conn)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tn-fleet-router-reader-{i}"))
                    .spawn(move || inner.reader_loop(i, conn))
                    .expect("spawn router reader thread")
            })
            .collect();
        Ok(Self {
            inner,
            readers: Mutex::new(readers),
        })
    }

    /// How many shard connections this router was built over (dead ones
    /// included).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Whether shard `i` is currently dispatch-eligible: connected and
    /// (with staleness health enabled) heartbeat-fresh.
    pub fn shard_healthy(&self, i: usize) -> bool {
        let now = self.inner.cfg.clock.now_ns();
        self.inner.shards.get(i).is_some_and(|s| {
            s.alive.load(Ordering::Relaxed) && !s.fresh.is_stale(now)
        })
    }

    /// Router-side in-flight count for shard `i` (test observability).
    pub fn shard_in_flight(&self, i: usize) -> u64 {
        self.inner
            .shards
            .get(i)
            .map_or(0, |s| s.in_flight.load(Ordering::Relaxed))
    }

    /// Rolling replica rescale: one shard at a time, each drained of
    /// in-flight requests before its epoch swap, with new submissions
    /// routed only to already-swapped shards for the duration. The
    /// fleet's answer stream is bit-identical to a solo runtime
    /// applying [`tn_serve::ControlAction::SetReplicas`] between two
    /// consecutive requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] if a roll is already in progress, or
    /// if a shard *refuses* the rescale (invalid count) — in which case
    /// earlier shards have already swapped and the error says so: the
    /// fleet is heterogeneous until a follow-up roll succeeds. Shards
    /// that die mid-roll are skipped (their requests re-route), not
    /// errors.
    pub fn set_replicas(&self, replicas: usize) -> Result<(), ServeError> {
        self.inner.set_replicas(replicas)
    }

    /// Stop admitting, wait for every in-flight request to complete,
    /// and tell every live shard to shut down. Does *not* wait for
    /// shards to close their ends — call [`FleetRouter::finish`] after
    /// the shard processes have wound down (for in-process fleets,
    /// after `ShardServer::join`).
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            let mut pending = shard.pending.lock().expect("pending lock");
            while !pending.is_empty() && shard.alive.load(Ordering::Relaxed) {
                pending = shard.drained.wait(pending).expect("pending lock");
            }
        }
        for shard in &self.inner.shards {
            if shard.alive.load(Ordering::Relaxed) {
                let mut w = shard.writer.lock().expect("writer lock");
                let _ = write_frame(
                    &mut **w,
                    FrameKind::Ctrl,
                    Ctrl::Shutdown.encode().as_bytes(),
                );
            }
        }
    }

    /// Join the reader threads (they exit when the shards close their
    /// connections) and return the fleet's final aggregate metrics —
    /// assembled *after* the shards' closing heartbeats landed, so the
    /// folded chip counters include each shard's full lifetime.
    pub fn finish(self) -> MetricsSnapshot {
        let readers = std::mem::take(&mut *self.readers.lock().expect("readers lock"));
        for r in readers {
            let _ = r.join();
        }
        self.inner.assemble_metrics()
    }

    /// [`FleetRouter::begin_shutdown`] + [`FleetRouter::finish`], for
    /// fleets whose shards close their own connections on Ctrl
    /// shutdown (remote processes). In-process fleets sequence the
    /// shard joins in between — see `LocalFleet::shutdown`.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.begin_shutdown();
        self.finish()
    }
}

impl Inner {
    fn reader_loop<T: Transport>(&self, idx: usize, mut conn: T) {
        // Clean EOF, torn frame, or I/O error all end the read the
        // same way: fall through to the disconnect handling below.
        while let Ok(Some(frame)) = read_frame(&mut conn) {
            match frame {
                (FrameKind::Resp, payload) => {
                    match parse_resp(&String::from_utf8_lossy(&payload)) {
                        Ok(resp) => self.complete_ok(idx, resp),
                        Err(_) => break,
                    }
                }
                (FrameKind::Err, payload) => {
                    match parse_err(&String::from_utf8_lossy(&payload)) {
                        Ok((seq, err)) => self.complete_err(idx, seq, err),
                        Err(_) => break,
                    }
                }
                (FrameKind::Snap, payload) => {
                    self.on_snapshot(idx, &String::from_utf8_lossy(&payload));
                }
                (FrameKind::Ack, payload) => {
                    if let Ok(ack) = Ack::parse(&String::from_utf8_lossy(&payload)) {
                        let shard = &self.shards[idx];
                        *shard.ack.lock().expect("ack lock") = Some(ack);
                        shard.ack_cv.notify_all();
                    }
                }
                _ => break,
            }
        }
        self.on_disconnect(idx);
    }

    /// Remove `seq` from a shard's pending map. Whoever wins this
    /// removal owns completion/retry of the entry — the single point
    /// that keeps the reader loop, a failed dispatch write, and the
    /// disconnect drain from double-handling one request.
    fn take_pending(&self, idx: usize, seq: u64) -> Option<Pending> {
        let shard = &self.shards[idx];
        let entry = {
            let mut pending = shard.pending.lock().expect("pending lock");
            let e = pending.remove(&seq);
            if pending.is_empty() {
                shard.drained.notify_all();
            }
            e
        };
        if entry.is_some() {
            shard.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
        entry
    }

    fn complete_ok(&self, idx: usize, mut resp: tn_serve::Response) {
        let Some(p) = self.take_pending(idx, resp.seq) else {
            return;
        };
        let lat_ns = self.cfg.clock.now_ns().saturating_sub(p.start_ns);
        // The caller's latency is end-to-end through the fleet, not the
        // shard's local measurement.
        resp.latency = Duration::from_nanos(lat_ns);
        self.latency.record(lat_ns);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.agreement_micros.fetch_add(
            (f64::from(resp.agreement) * 1e6) as u64,
            Ordering::Relaxed,
        );
        p.completer.complete(Ok(resp));
    }

    fn retryable(e: &ServeError) -> bool {
        matches!(e, ServeError::QueueFull | ServeError::ShuttingDown)
    }

    fn complete_err(&self, idx: usize, seq: u64, err: ServeError) {
        let Some(p) = self.take_pending(idx, seq) else {
            return;
        };
        if Self::retryable(&err)
            && p.retries < self.cfg.max_retries
            && !self.shutting_down.load(Ordering::Relaxed)
        {
            self.retried.fetch_add(1, Ordering::Relaxed);
            // Skip the shard that just refused: under ConsistentHash a
            // naked re-pick is a pure function of (seq, health) and
            // would deterministically hit the same overloaded shard
            // until the budget ran out. Called from this shard's reader
            // thread, so the dispatch must not block (`may_block:
            // false`) — see the roll-barrier note on `dispatch`.
            let _ = self.dispatch(
                seq,
                &p.request,
                p.completer,
                p.retries + 1,
                p.start_ns,
                Some(idx),
                false,
            );
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            p.completer.complete(Err(err));
        }
    }

    fn on_snapshot(&self, idx: usize, line: &str) {
        let Ok(snap) = Snapshot::parse_json_line(line) else {
            return;
        };
        let shard = &self.shards[idx];
        shard.fresh.mark(self.cfg.clock.now_ns());
        if let Some(fill) = snap.gauges.get("serve.queue_fill") {
            shard.queue_fill.store(fill.to_bits(), Ordering::Relaxed);
        }
        if let Some(cores) = snap.gauges.get("serve.cores") {
            if cores.is_finite() && *cores >= 0.0 {
                shard.cores.store(*cores as u64, Ordering::Relaxed);
            }
        }
        self.sink.export(&snap);
        *shard.latest.lock().expect("latest lock") = Some(snap);
    }

    fn on_disconnect(&self, idx: usize) {
        let shard = &self.shards[idx];
        shard.alive.store(false, Ordering::SeqCst);
        if !self.shutting_down.load(Ordering::Relaxed) {
            shard.failed.store(true, Ordering::SeqCst);
        }
        // Wake a roll waiting on this shard's ack.
        {
            let mut ack = shard.ack.lock().expect("ack lock");
            if ack.is_none() {
                *ack = Some(Ack {
                    op: String::new(),
                    error: Some("connection lost".to_string()),
                });
            }
            shard.ack_cv.notify_all();
        }
        // Membership changed: dispatchers and drains must re-evaluate.
        self.roll_cv.notify_all();
        let orphans: Vec<(u64, Pending)> = {
            let mut pending = shard.pending.lock().expect("pending lock");
            let v = pending.drain().collect();
            shard.drained.notify_all();
            v
        };
        for (seq, p) in orphans {
            shard.in_flight.fetch_sub(1, Ordering::Relaxed);
            if p.retries < self.cfg.max_retries && !self.shutting_down.load(Ordering::Relaxed) {
                self.retried.fetch_add(1, Ordering::Relaxed);
                let _ = self.dispatch(
                    seq,
                    &p.request,
                    p.completer,
                    p.retries + 1,
                    p.start_ns,
                    Some(idx),
                    false,
                );
            } else {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                p.completer
                    .complete(Err(self.terminal_error("shard connection lost")));
            }
        }
    }

    /// The error a request fails with when the fleet cannot place it
    /// anywhere: an honest [`ServeError::ShuttingDown`] during a drain,
    /// [`ServeError::Unavailable`] otherwise — callers must be able to
    /// tell a requested drain from a fleet that fell over.
    fn terminal_error(&self, detail: &str) -> ServeError {
        if self.shutting_down.load(Ordering::Relaxed) {
            ServeError::ShuttingDown
        } else {
            ServeError::Unavailable(detail.to_string())
        }
    }

    /// Pick a dispatch-eligible shard for `seq` under the membership
    /// lock, preferring not to land on `skip` (the shard whose
    /// retryable error caused this re-dispatch). If `skip` is the only
    /// eligible shard, fall back to it — one more attempt there beats
    /// failing a request the fleet could still serve.
    fn pick(&self, roll: &Roll, seq: u64, skip: Option<usize>) -> Option<usize> {
        self.pick_filtered(roll, seq, skip).or_else(|| {
            skip.and_then(|_| self.pick_filtered(roll, seq, None))
        })
    }

    /// Pick among eligible shards, excluding `skip` outright. Eligible
    /// = connected, heartbeat-fresh, and (mid-roll) already swapped to
    /// the new epoch.
    fn pick_filtered(&self, roll: &Roll, seq: u64, skip: Option<usize>) -> Option<usize> {
        let now = self.cfg.clock.now_ns();
        let eligible = self.shards.iter().enumerate().filter(|(i, s)| {
            Some(*i) != skip
                && s.alive.load(Ordering::Relaxed)
                && !s.fresh.is_stale(now)
                && (!roll.active || roll.swapped[*i])
        });
        match self.cfg.policy {
            DispatchPolicy::ConsistentHash => eligible
                .max_by_key(|(_, s)| splitmix64(seq ^ s.salt))
                .map(|(i, _)| i),
            DispatchPolicy::LeastLoaded => eligible
                .min_by(|(ai, a), (bi, b)| {
                    let fill_a = f64::from_bits(a.queue_fill.load(Ordering::Relaxed));
                    let fill_b = f64::from_bits(b.queue_fill.load(Ordering::Relaxed));
                    fill_a
                        .total_cmp(&fill_b)
                        .then_with(|| {
                            a.in_flight
                                .load(Ordering::Relaxed)
                                .cmp(&b.in_flight.load(Ordering::Relaxed))
                        })
                        .then(ai.cmp(bi))
                })
                .map(|(i, _)| i),
        }
    }

    /// Route one request to a shard, registering it as pending first so
    /// the answer can never race past its bookkeeping. Holding the
    /// membership (roll) lock across the pending insert and frame write
    /// is what makes the rescale barrier exact: a roll cannot begin
    /// between shard selection and the request landing on the wire.
    ///
    /// `may_block` decides what happens in the mid-roll lull (a roll is
    /// active and no swapped shard is eligible). Submitter threads pass
    /// `true` and wait on the roll condvar until the first swap lands.
    /// Shard *reader* threads must pass `false`: a reader blocked here
    /// stops consuming its shard's Resp frames, and if the roll is
    /// draining that same shard the drain can never finish — a fleet-
    /// wide deadlock. Non-blocking dispatches park the request on the
    /// roll instead ([`Roll::parked`]); the roll thread re-dispatches
    /// parked requests after every swap and when the roll ends.
    ///
    /// Terminal failures (no eligible shard outside a roll, retry
    /// budget exhausted) complete the completer with
    /// [`ServeError::ShuttingDown`] during a drain or
    /// [`ServeError::Unavailable`] otherwise, and return the error.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        seq: u64,
        request: &SubmitRequest,
        completer: Completer,
        retries: usize,
        start_ns: u64,
        skip: Option<usize>,
        may_block: bool,
    ) -> Result<(), ServeError> {
        let mut completer = completer;
        let mut retries = retries;
        let mut skip = skip;
        loop {
            let mut roll = self.roll.lock().expect("roll lock");
            let picked = loop {
                match self.pick(&roll, seq, skip) {
                    Some(i) => break Some(i),
                    // Mid-roll lull (no shard swapped yet): hold the
                    // request until the first swap lands.
                    None if roll.active => {
                        if may_block {
                            roll = self.roll_cv.wait(roll).expect("roll lock");
                        } else {
                            roll.parked.push(Parked {
                                seq,
                                request: request.clone(),
                                completer,
                                retries,
                                start_ns,
                                skip,
                            });
                            return Ok(());
                        }
                    }
                    None => break None,
                }
            };
            let Some(i) = picked else {
                drop(roll);
                let err = self.terminal_error("no healthy shard to dispatch to");
                self.rejected.fetch_add(1, Ordering::Relaxed);
                completer.complete(Err(err.clone()));
                return Err(err);
            };
            let shard = &self.shards[i];
            shard.pending.lock().expect("pending lock").insert(
                seq,
                Pending {
                    completer,
                    request: request.clone(),
                    retries,
                    start_ns,
                },
            );
            shard.in_flight.fetch_add(1, Ordering::Relaxed);
            let wrote = {
                let mut w = shard.writer.lock().expect("writer lock");
                write_frame(&mut **w, FrameKind::Req, encode_req(seq, request).as_bytes()).is_ok()
            };
            drop(roll);
            if wrote {
                return Ok(());
            }
            // The connection died under the write. The reader loop will
            // reach the same conclusion; whoever removes the pending
            // entry first owns the retry.
            shard.alive.store(false, Ordering::SeqCst);
            if !self.shutting_down.load(Ordering::Relaxed) {
                shard.failed.store(true, Ordering::SeqCst);
            }
            self.roll_cv.notify_all();
            let Some(p) = self.take_pending(i, seq) else {
                return Ok(()); // disconnect drain already owns it
            };
            completer = p.completer;
            if retries >= self.cfg.max_retries {
                let err =
                    self.terminal_error("shard connection lost and retry budget exhausted");
                self.rejected.fetch_add(1, Ordering::Relaxed);
                completer.complete(Err(err.clone()));
                return Err(err);
            }
            retries += 1;
            skip = Some(i);
            self.retried.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Re-dispatch every parked request (never from a reader thread —
    /// callers are the roll thread, which holds no locks here). A
    /// request that still finds no eligible shard while the roll is
    /// active simply parks again; the roll's end is the last drain, at
    /// which point dispatch resolves to a live shard or a terminal
    /// error.
    fn drain_parked(&self, parked: Vec<Parked>) {
        for p in parked {
            let _ = self.dispatch(
                p.seq,
                &p.request,
                p.completer,
                p.retries,
                p.start_ns,
                p.skip,
                false,
            );
        }
    }

    fn set_replicas(&self, replicas: usize) -> Result<(), ServeError> {
        {
            let mut roll = self.roll.lock().expect("roll lock");
            if roll.active {
                return Err(ServeError::BadConfig(
                    "a replica rescale is already rolling".to_string(),
                ));
            }
            roll.active = true;
            roll.swapped.iter_mut().for_each(|s| *s = false);
        }
        let result = self.roll_shards(replicas);
        // End the roll and claim any still-parked requests in one lock
        // acquisition: once `active` is false no new parks can land, so
        // the drain below is the final one.
        let parked = {
            let mut roll = self.roll.lock().expect("roll lock");
            roll.active = false;
            std::mem::take(&mut roll.parked)
        };
        self.roll_cv.notify_all();
        self.drain_parked(parked);
        if result.is_ok() {
            self.live_replicas.store(replicas, Ordering::Relaxed);
        }
        result
    }

    fn roll_shards(&self, replicas: usize) -> Result<(), ServeError> {
        for (i, shard) in self.shards.iter().enumerate() {
            if !shard.alive.load(Ordering::Relaxed) {
                continue;
            }
            // The shard is not yet swapped, so no new work can land on
            // it; wait for its in-flight requests to drain at the old
            // replica count.
            {
                let mut pending = shard.pending.lock().expect("pending lock");
                while !pending.is_empty() && shard.alive.load(Ordering::Relaxed) {
                    pending = shard.drained.wait(pending).expect("pending lock");
                }
            }
            if !shard.alive.load(Ordering::Relaxed) {
                continue;
            }
            *shard.ack.lock().expect("ack lock") = None;
            let wrote = {
                let mut w = shard.writer.lock().expect("writer lock");
                write_frame(
                    &mut **w,
                    FrameKind::Ctrl,
                    Ctrl::SetReplicas(replicas).encode().as_bytes(),
                )
                .is_ok()
            };
            if !wrote {
                shard.alive.store(false, Ordering::SeqCst);
                self.roll_cv.notify_all();
                continue;
            }
            let ack = {
                let mut slot = shard.ack.lock().expect("ack lock");
                loop {
                    if let Some(a) = slot.take() {
                        break a;
                    }
                    if !shard.alive.load(Ordering::Relaxed) {
                        break Ack {
                            op: String::new(),
                            error: Some("connection lost".to_string()),
                        };
                    }
                    slot = shard.ack_cv.wait(slot).expect("ack lock");
                }
            };
            if let Some(e) = ack.error {
                if !shard.alive.load(Ordering::Relaxed) {
                    continue; // died mid-roll: skip, its requests re-route
                }
                return Err(ServeError::BadConfig(format!(
                    "shard {i} refused rescale to {replicas}: {e}; shards 0..{i} already \
                     swapped — the fleet is heterogeneous until a follow-up rescale succeeds"
                )));
            }
            // The swap landed: the shard's deployment now occupies
            // cores scaled to the new replica count. Refresh the
            // router-side gauge arithmetically (the connect-time Hello
            // reported `cores` at `replicas`, and cores scale linearly
            // with the replica count) so energy attribution tracks the
            // rescale even on shards running without telemetry; the
            // next heartbeat's `serve.cores` gauge confirms it.
            if self.hello.replicas > 0 {
                let per_replica = self.hello.cores as u64 / self.hello.replicas as u64;
                shard
                    .cores
                    .store(per_replica * replicas as u64, Ordering::Relaxed);
            }
            let parked = {
                let mut roll = self.roll.lock().expect("roll lock");
                roll.swapped[i] = true;
                std::mem::take(&mut roll.parked)
            };
            self.roll_cv.notify_all();
            // A shard just rejoined the dispatch set: requests parked by
            // reader threads during the lull can go somewhere now.
            self.drain_parked(parked);
        }
        Ok(())
    }

    fn total_in_flight(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.in_flight.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum a counter across each shard's most recent heartbeat.
    fn fold_counter(&self, name: &str) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.latest
                    .lock()
                    .expect("latest lock")
                    .as_ref()
                    .and_then(|snap| snap.counters.get(name).copied())
                    .unwrap_or(0)
            })
            .sum()
    }

    fn assemble_metrics(&self) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed_ns = self
            .cfg
            .clock
            .now_ns()
            .saturating_sub(self.started_ns)
            .max(1);
        let elapsed = Duration::from_nanos(elapsed_ns);
        let chip = ChipCounterExport {
            synaptic_ops: self.fold_counter("chip.synaptic_ops"),
            spikes_in: self.fold_counter("chip.spikes_in"),
            spikes_out: self.fold_counter("chip.spikes_out"),
            routed_spikes: self.fold_counter("chip.routed_spikes"),
            mesh_hops: self.fold_counter("chip.mesh_hops"),
            output_spikes: self.fold_counter("chip.output_spikes"),
            flushed_spikes: self.fold_counter("chip.flushed_spikes"),
            ticks: self.fold_counter("chip.ticks"),
            axon_visits: self.fold_counter("chip.axon_visits"),
            axon_slots: self.fold_counter("chip.axon_slots"),
            rows_skipped: self.fold_counter("chip.rows_skipped"),
            cores_skipped: self.fold_counter("chip.cores_skipped"),
        };
        // Static power scales with every core the fleet keeps powered:
        // the live per-shard counts (heartbeat `serve.cores` gauges,
        // refreshed through rolling rescales), skipping shards whose
        // connections failed — a dead shard powers nothing. Shards that
        // closed during an orderly shutdown still count: this snapshot
        // attributes the fleet they formed.
        let fleet_cores: usize = self
            .shards
            .iter()
            .filter(|s| !s.failed.load(Ordering::Relaxed))
            .map(|s| s.cores.load(Ordering::Relaxed) as usize)
            .sum();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.total_in_flight() as usize,
            batches: self.fold_counter("serve.batches"),
            kernel_batches: self.fold_counter("serve.kernel_batches"),
            ticks: self.fold_counter("serve.ticks"),
            // Worker identity is shard-local; per-worker tallies do not
            // aggregate meaningfully across a fleet.
            per_worker_frames: Vec::new(),
            per_worker_ticks: Vec::new(),
            p50_latency: self.latency.quantile(0.50),
            p90_latency: self.latency.quantile(0.90),
            p99_latency: self.latency.quantile(0.99),
            mean_latency: self.latency.mean(),
            elapsed,
            throughput_rps: completed as f64 / elapsed.as_secs_f64(),
            mean_agreement: if completed == 0 {
                0.0
            } else {
                (self.agreement_micros.load(Ordering::Relaxed) as f64 / 1e6 / completed as f64)
                    as f32
            },
            energy: EnergyReport::from_counters(chip.synaptic_ops, chip.ticks, fleet_cores),
            chip,
        }
    }

    fn validate(&self, request: &SubmitRequest) -> Result<(), ServeError> {
        let h = &self.hello;
        if request.model >= h.models.len() {
            return Err(ServeError::UnknownModel {
                model: request.model,
                models: h.models.len(),
            });
        }
        let expected = h.models[request.model].0;
        if request.frame.len() != expected {
            return Err(ServeError::BadInput {
                expected,
                got: request.frame.len(),
            });
        }
        for (channel, &value) in request.frame.iter().enumerate() {
            if !(0.0..=1.0).contains(&value) {
                return Err(ServeError::InputOutOfRange { channel, value });
            }
        }
        if request.class >= h.spf.len() {
            return Err(ServeError::UnknownClass {
                class: request.class,
                classes: h.spf.len(),
            });
        }
        if let Some(q) = &request.quality {
            if !h.tiers.iter().any(|t| t == q) {
                return Err(ServeError::UnknownQuality {
                    quality: q.clone(),
                    tiers: h.tiers.clone(),
                });
            }
        }
        Ok(())
    }

    fn submit(&self, request: SubmitRequest) -> Result<RequestHandle, ServeError> {
        if self.shutting_down.load(Ordering::Relaxed) {
            return Err(ServeError::ShuttingDown);
        }
        self.validate(&request)?;
        // The router owns the fleet-global sequence counter — the
        // determinism key. An explicit caller seq is honored and the
        // counter advanced past it, mirroring ServeRuntime::submit.
        let seq = match request.seq {
            Some(s) => {
                self.next_seq
                    .fetch_max(s.saturating_add(1), Ordering::Relaxed);
                s
            }
            None => self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let (handle, completer) = RequestHandle::channel(seq);
        // Submitter threads may block through a mid-roll lull — they are
        // not reader threads, so waiting on the roll barrier is safe.
        self.dispatch(seq, &request, completer, 0, self.cfg.clock.now_ns(), None, true)?;
        Ok(handle)
    }
}

impl ServeBackend for FleetRouter {
    fn submit_request(&self, request: SubmitRequest) -> Result<RequestHandle, ServeError> {
        self.inner.submit(request)
    }

    fn queue_stats(&self) -> QueueStats {
        // The router cannot see inside shard queues synchronously;
        // in-flight (accepted, unanswered) is its live admission gauge,
        // conservatively reported as depth too. Capacity counts only
        // connected shards — a dead shard's queue slots admit nothing.
        let in_flight = self.inner.total_in_flight();
        let connected = self
            .inner
            .shards
            .iter()
            .filter(|s| s.alive.load(Ordering::Relaxed))
            .count();
        QueueStats {
            depth: in_flight as usize,
            capacity: self.inner.hello.queue_capacity * connected,
            in_flight,
        }
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.inner.assemble_metrics()
    }

    fn n_inputs(&self) -> usize {
        self.inner.hello.n_inputs
    }

    fn n_classes(&self) -> usize {
        self.inner.hello.n_classes
    }

    fn models(&self) -> usize {
        self.inner.hello.models.len()
    }

    fn model_n_inputs(&self, model: usize) -> Option<usize> {
        self.inner.hello.models.get(model).map(|(i, _)| *i)
    }

    fn model_n_classes(&self, model: usize) -> Option<usize> {
        self.inner.hello.models.get(model).map(|(_, c)| *c)
    }

    fn is_packed(&self) -> bool {
        self.inner.hello.packed
    }

    fn replicas(&self) -> usize {
        self.inner.live_replicas.load(Ordering::Relaxed)
    }

    fn kernel_batch(&self) -> usize {
        self.inner.hello.kernel_batch
    }

    fn spf_per_class(&self) -> Vec<usize> {
        self.inner.hello.spf.clone()
    }

    fn tier_names(&self) -> Vec<String> {
        self.inner.hello.tiers.clone()
    }

    fn config(&self) -> &ServeConfig {
        &self.inner.cfg.serve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_recorded_values() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000); // bucket [512, 1024)... 1000 -> k=9
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.50).as_nanos() as u64;
        assert!((512..2048).contains(&p50), "p50 midpoint near 1us, got {p50}");
        let p99 = h.quantile(0.99).as_nanos() as u64;
        assert!(
            (524_288..2_097_152).contains(&p99),
            "p99 in the 1ms bucket, got {p99}"
        );
        assert_eq!(h.mean().as_nanos() as u64, (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn rendezvous_hash_is_stable_and_spreads() {
        // Same seq → same winner regardless of when asked; different
        // seqs spread across salts.
        let salts: Vec<u64> = (0..4).map(|i| splitmix64(i + 1)).collect();
        let winner = |seq: u64| {
            (0..4usize)
                .max_by_key(|i| splitmix64(seq ^ salts[*i]))
                .unwrap()
        };
        let mut seen = [0usize; 4];
        for seq in 0..1000 {
            assert_eq!(winner(seq), winner(seq));
            seen[winner(seq)] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 100),
            "each shard should win a fair share: {seen:?}"
        );
    }

    #[test]
    fn empty_fleet_is_refused() {
        let cfg = FleetConfig::new(ServeConfig::new(1));
        let conns: Vec<tn_serve::pipe::PipeStream> = Vec::new();
        assert!(matches!(
            FleetRouter::connect(conns, cfg),
            Err(ServeError::BadConfig(_))
        ));
    }

    // -----------------------------------------------------------------
    // Protocol-level tests over a scripted shard end: the test plays a
    // shard by speaking raw frames on the other side of a duplex pipe,
    // which lets it script failure interleavings (queue-full errors,
    // severed connections, mid-roll replies) that a real ShardServer
    // would never produce on cue.
    // -----------------------------------------------------------------

    use crate::msg::{encode_err, encode_resp, parse_req};
    use crate::shard::ShardServer;
    use std::time::Instant;
    use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};
    use tn_serve::pipe::duplex;
    use tn_serve::{Response, ServeRuntime, ServedAs};

    fn tiny_spec() -> NetworkDeploySpec {
        NetworkDeploySpec {
            cores: vec![CoreDeploySpec {
                layer: 0,
                weights: vec![0.8, -0.6, -0.6, 0.8],
                n_axons: 2,
                n_neurons: 2,
                biases: vec![-0.4, -0.4],
                axon_sources: vec![InputSource::External(0), InputSource::External(1)],
            }],
            n_inputs: 2,
            n_classes: 2,
            output_taps: vec![(0, 0, 0), (0, 1, 1)],
        }
    }

    fn tiny_cfg() -> ServeConfig {
        ServeConfig::builder(7)
            .replicas(2)
            .workers(1)
            .build()
            .expect("valid config")
    }

    /// The announcement a real `ShardServer` hosting `rt` would make —
    /// so a scripted shard is indistinguishable at the handshake.
    fn mirror_hello(rt: &ServeRuntime) -> Hello {
        Hello {
            n_inputs: rt.n_inputs(),
            n_classes: rt.n_classes(),
            models: (0..rt.models())
                .map(|m| {
                    (
                        rt.model_n_inputs(m).unwrap_or(0),
                        rt.model_n_classes(m).unwrap_or(0),
                    )
                })
                .collect(),
            replicas: rt.replicas(),
            packed: rt.is_packed(),
            kernel_batch: rt.kernel_batch(),
            spf: rt.spf_per_class(),
            tiers: rt.tier_names(),
            queue_capacity: rt.config().queue_capacity,
            cores: rt.cores(),
        }
    }

    fn request_inputs(i: usize) -> Vec<f32> {
        let x = (i % 7) as f32 / 6.0;
        vec![x, 1.0 - x]
    }

    /// A syntactically complete response for `seq` — content is
    /// irrelevant to tests that only assert *completion*.
    fn canned_resp(seq: u64) -> Response {
        Response {
            seq,
            predicted: 0,
            votes: vec![1, 0],
            replica_predictions: vec![0, 0],
            agreement: 1.0,
            served: ServedAs::new(0, 0, 8),
            worker: 0,
            ticks: 8,
            latency: Duration::ZERO,
        }
    }

    fn wait_until(deadline_secs: u64, mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(deadline_secs);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting: {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn packed_shards_are_refused_at_connect() {
        let (mut shard_end, router_end) = duplex(64 * 1024);
        let hello = Hello {
            n_inputs: 2,
            n_classes: 2,
            models: vec![(2, 2), (2, 2)],
            replicas: 1,
            packed: true,
            kernel_batch: 1,
            spf: vec![8],
            tiers: vec![],
            queue_capacity: 16,
            cores: 2,
        };
        write_frame(&mut shard_end, FrameKind::Hello, hello.encode().as_bytes())
            .expect("handshake write");
        let err = FleetRouter::connect(vec![router_end], FleetConfig::new(ServeConfig::new(1)))
            .expect_err("a packed shard must be refused");
        match err {
            ServeError::BadConfig(msg) => {
                assert!(msg.contains("packed"), "refusal must say why: {msg}");
            }
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn no_healthy_shard_fails_with_unavailable_not_shutting_down() {
        let cfg = tiny_cfg();
        let oracle = ServeRuntime::new(&tiny_spec(), cfg.clone()).expect("oracle deploy");
        let hello = mirror_hello(&oracle);
        oracle.shutdown();

        let (mut shard_end, router_end) = duplex(64 * 1024);
        write_frame(&mut shard_end, FrameKind::Hello, hello.encode().as_bytes())
            .expect("handshake write");
        let router =
            FleetRouter::connect(vec![router_end], FleetConfig::new(cfg)).expect("connect");
        assert!(router.shard_healthy(0), "alive after handshake");

        // The only shard's connection dies; nobody asked for a drain.
        shard_end.shutdown();
        wait_until(10, || !router.shard_healthy(0), "shard death detection");
        let err = router
            .submit_request(SubmitRequest::new(vec![0.0, 1.0]))
            .expect_err("no shard can serve");
        assert!(
            matches!(err, ServeError::Unavailable(_)),
            "a dead (not draining) fleet must report Unavailable, got {err:?}"
        );
        // Capacity reflects zero connected shards.
        assert_eq!(router.queue_stats().capacity, 0);
    }

    #[test]
    fn retryable_error_reroutes_away_from_the_erroring_shard() {
        let spec = tiny_spec();
        let cfg = tiny_cfg();
        const N: usize = 16;

        // Solo oracle (also the template for the scripted shard's Hello).
        let oracle = ServeRuntime::new(&spec, cfg.clone()).expect("oracle deploy");
        let hello = mirror_hello(&oracle);
        let solo: Vec<Response> = (0..N)
            .map(|i| {
                oracle
                    .submit(SubmitRequest::new(request_inputs(i)))
                    .expect("oracle submit")
                    .wait()
                    .expect("oracle answer")
            })
            .collect();
        oracle.shutdown();

        // Shard 0: scripted, answers every request with QueueFull.
        // Shard 1: a real runtime.
        let (mut fake_end, router0_end) = duplex(256 * 1024);
        write_frame(&mut fake_end, FrameKind::Hello, hello.encode().as_bytes())
            .expect("handshake write");
        let refused = Arc::new(AtomicU64::new(0));
        let refused_in_fake = Arc::clone(&refused);
        let fake = std::thread::spawn(move || {
            while let Ok(Some((kind, payload))) = read_frame(&mut fake_end) {
                match kind {
                    FrameKind::Req => {
                        let (seq, _) = parse_req(&String::from_utf8_lossy(&payload))
                            .expect("well-formed req");
                        refused_in_fake.fetch_add(1, Ordering::Relaxed);
                        let _ = write_frame(
                            &mut fake_end,
                            FrameKind::Err,
                            encode_err(seq, &ServeError::QueueFull).as_bytes(),
                        );
                    }
                    FrameKind::Ctrl => {
                        let ctrl =
                            Ctrl::parse(&String::from_utf8_lossy(&payload)).expect("ctrl");
                        let op = match ctrl {
                            Ctrl::SetReplicas(_) => "set_replicas",
                            Ctrl::Shutdown => "shutdown",
                        };
                        let _ = write_frame(
                            &mut fake_end,
                            FrameKind::Ack,
                            Ack { op: op.to_string(), error: None }.encode().as_bytes(),
                        );
                        if matches!(ctrl, Ctrl::Shutdown) {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        });
        let (shard1_end, router1_end) = duplex(256 * 1024);
        let shard1 = ShardServer::host(&spec, cfg.clone(), shard1_end).expect("host shard 1");
        let router = FleetRouter::connect(
            vec![router0_end, router1_end],
            FleetConfig::new(cfg).max_retries(2),
        )
        .expect("connect");

        let handles: Vec<_> = (0..N)
            .map(|i| {
                router
                    .submit_request(SubmitRequest::new(request_inputs(i)))
                    .expect("submit")
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let got = h.wait().expect("every request must complete despite QueueFull");
            assert_eq!(
                (got.predicted, got.votes.clone(), got.agreement.to_bits()),
                (
                    solo[i].predicted,
                    solo[i].votes.clone(),
                    solo[i].agreement.to_bits()
                ),
                "seq {i} diverged from solo after re-route"
            );
        }
        // The hash really spread work onto the refusing shard — the
        // retry path was exercised, not bypassed.
        assert!(
            refused.load(Ordering::Relaxed) > 0,
            "consistent hash never picked the scripted shard; test is vacuous"
        );

        router.begin_shutdown();
        fake.join().expect("scripted shard exits on Ctrl shutdown");
        shard1.join();
        let metrics = router.finish();
        assert_eq!(metrics.completed, N as u64);
        assert_eq!(metrics.rejected, 0, "re-routing must not surface rejects");
    }

    #[test]
    fn reader_thread_retry_mid_roll_parks_instead_of_deadlocking() {
        let spec = tiny_spec();
        let cfg = tiny_cfg();

        // Two seqs that rendezvous-hash to shard 0 (the scripted one).
        let salts: Vec<u64> = (0..2).map(|i| splitmix64(i + 1)).collect();
        let picks_shard0 = |seq: u64| {
            (0..2usize)
                .max_by_key(|i| splitmix64(seq ^ salts[*i]))
                .unwrap()
                == 0
        };
        let mut pinned = (0u64..).filter(|s| picks_shard0(*s));
        let s1 = pinned.next().unwrap();
        let s2 = pinned.next().unwrap();

        let oracle = ServeRuntime::new(&spec, cfg.clone()).expect("oracle deploy");
        let hello = mirror_hello(&oracle);
        oracle.shutdown();

        let (mut fake_end, router0_end) = duplex(256 * 1024);
        write_frame(&mut fake_end, FrameKind::Hello, hello.encode().as_bytes())
            .expect("handshake write");
        let (shard1_end, router1_end) = duplex(256 * 1024);
        let shard1 = ShardServer::host(&spec, cfg.clone(), shard1_end).expect("host shard 1");
        let router = FleetRouter::connect(
            vec![router0_end, router1_end],
            FleetConfig::new(cfg).max_retries(3),
        )
        .expect("connect");

        // Pin both requests onto shard 0: they are its in-flight set.
        let h1 = router
            .submit_request(SubmitRequest::new(request_inputs(s1 as usize)).at_seq(s1))
            .expect("submit s1");
        let h2 = router
            .submit_request(SubmitRequest::new(request_inputs(s2 as usize)).at_seq(s2))
            .expect("submit s2");

        // The scripted shard runs on its own thread (never the one
        // doing the waits below, so a regression hangs the *handles*,
        // not the test harness): it holds both requests, then — on
        // `release` — answers s1 with QueueFull and s2 with a response,
        // and from then on serves generically (any retried s1, acks,
        // shutdown).
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let fake = std::thread::spawn(move || {
            for expect in [s1, s2] {
                let (kind, payload) = read_frame(&mut fake_end)
                    .expect("read req")
                    .expect("req frame");
                assert_eq!(kind, FrameKind::Req);
                let (seq, _) =
                    parse_req(&String::from_utf8_lossy(&payload)).expect("well-formed req");
                assert_eq!(seq, expect, "requests arrive in submission order");
            }
            release_rx.recv().expect("release signal");
            write_frame(
                &mut fake_end,
                FrameKind::Err,
                encode_err(s1, &ServeError::QueueFull).as_bytes(),
            )
            .expect("send queue-full");
            write_frame(
                &mut fake_end,
                FrameKind::Resp,
                encode_resp(&canned_resp(s2)).as_bytes(),
            )
            .expect("send resp");
            // Generic tail: the retried s1 may come back here (while
            // shard 0 is the only swapped shard the retry's fallback
            // legitimately lands on it again) — serve it; ack control
            // frames; exit on shutdown.
            loop {
                match read_frame(&mut fake_end).expect("read") {
                    Some((FrameKind::Req, payload)) => {
                        let (seq, _) = parse_req(&String::from_utf8_lossy(&payload))
                            .expect("well-formed req");
                        assert_eq!(seq, s1, "only s1 can come back");
                        write_frame(
                            &mut fake_end,
                            FrameKind::Resp,
                            encode_resp(&canned_resp(s1)).as_bytes(),
                        )
                        .expect("serve retried s1");
                    }
                    Some((FrameKind::Ctrl, payload)) => {
                        let ctrl =
                            Ctrl::parse(&String::from_utf8_lossy(&payload)).expect("ctrl");
                        let op = match ctrl {
                            Ctrl::SetReplicas(_) => "set_replicas",
                            Ctrl::Shutdown => "shutdown",
                        };
                        write_frame(
                            &mut fake_end,
                            FrameKind::Ack,
                            Ack { op: op.to_string(), error: None }.encode().as_bytes(),
                        )
                        .expect("ack ctrl");
                        if matches!(ctrl, Ctrl::Shutdown) {
                            break;
                        }
                    }
                    None => break,
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        });

        std::thread::scope(|scope| {
            // The roll: it must drain shard 0 (both pinned requests
            // pending) before anything is swapped.
            let roll = scope.spawn(|| router.set_replicas(3));
            // Give the roll time to enter the shard-0 drain, so the
            // QueueFull is (with overwhelming likelihood) handled by
            // shard 0's reader *mid-roll, before any swap* — the exact
            // interleaving that used to deadlock: the reader's retry
            // dispatch blocked on the roll barrier, the Resp for s2
            // was never read, and the drain never finished.
            std::thread::sleep(Duration::from_millis(50));
            release_tx.send(()).expect("release fake shard");

            assert_eq!(
                h1.wait_timeout(Duration::from_secs(20))
                    .expect("s1 completes — no deadlock")
                    .seq,
                s1
            );
            assert_eq!(
                h2.wait_timeout(Duration::from_secs(20))
                    .expect("s2 completes — no deadlock")
                    .seq,
                s2
            );
            roll.join()
                .expect("roll thread")
                .expect("rolling rescale succeeds");
        });

        router.begin_shutdown();
        fake.join().expect("scripted shard exits cleanly");
        shard1.join();
        let metrics = router.finish();
        assert_eq!(metrics.completed, 2);
        assert_eq!(metrics.rejected, 0);
    }
}

//! `tn-serve` — a concurrent, batched inference runtime over deployed
//! TrueNorth chip replicas.
//!
//! The offline layers of this workspace answer "how accurate is a
//! deployment?" by sweeping frames over a grid. This crate answers the
//! *serving* question: keep trained networks resident on chip replicas
//! and answer a stream of classification requests with bounded memory,
//! backpressure, and deterministic results.
//!
//! # Architecture
//!
//! ```text
//!  submit()/classify()         BoundedQueue            worker threads
//!  ┌──────────────┐   push   ┌─────────────┐ pop_batch ┌─────────────────┐
//!  │ callers (any │ ───────► │ bounded MPMC│ ────────► │ worker 0        │
//!  │   thread)    │  block/  │   queue     │  (micro-  │  Deployment     │
//!  └──────┬───────┘  reject  └─────────────┘  batches) │  (R replicas)   │
//!         │                                            ├─────────────────┤
//!         │ RequestHandle::wait()                      │ worker 1 …      │
//!         ▼                                            │  (bit-identical │
//!  ┌──────────────┐      Completer::complete()         │   clone)        │
//!  │   Response   │ ◄───────────────────────────────── └─────────────────┘
//!  └──────────────┘   votes pooled across replicas
//! ```
//!
//! * **Replicas** are the paper's duplication axis: each worker's
//!   [`tn_chip::nscs::Deployment`] carries `cfg.replicas` independently
//!   Bernoulli-sampled spatial copies of the network, and a request's
//!   prediction is the argmax of their pooled votes.
//!   [`Response::agreement`] reports how unanimously the replicas voted —
//!   a live estimate of how much duplication the model still needs.
//! * **Workers** are OS threads that each own a *clone* of one prototype
//!   deployment, so every worker holds bit-identical replicas and any
//!   worker can serve any request.
//! * **Determinism**: a request's spike trains are seeded by
//!   `(cfg.seed, seq)` alone — the same per-frame derivation the offline
//!   evaluator uses — so results never depend on worker count, queue
//!   timing, or OS scheduling. See
//!   `results_are_a_function_of_seq_not_worker_count` in `runtime.rs`.
//! * **Fast path**: each worker ticks the compiled kernel
//!   ([`tn_chip::kernel::CompiledChip`]) its deployment builds at deploy
//!   time, and [`ServeConfig::core_threads`] optionally fans cores across
//!   threads inside each tick — both bit-identical to the reference
//!   interpreter, so the determinism contract above is unaffected.
//! * **Backpressure**: the submission queue is bounded;
//!   [`Backpressure::Block`] throttles producers, [`Backpressure::Reject`]
//!   sheds load with [`ServeError::QueueFull`].
//! * **Shutdown**: [`ServeRuntime::shutdown`] refuses new submissions,
//!   drains every queued request, joins the workers, and returns the
//!   final [`MetricsSnapshot`] (throughput, p50/p90/p99 latency, queue
//!   depth,
//!   per-worker tick counts, energy per frame via [`tn_chip::energy`]).
//!
//! # Example
//!
//! ```
//! use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};
//! use tn_serve::{ServeConfig, ServeRuntime};
//!
//! // A toy 2-input / 2-class network; real callers extract a spec from a
//! // trained model (see `truenorth::serving`).
//! let spec = NetworkDeploySpec {
//!     cores: vec![CoreDeploySpec {
//!         layer: 0,
//!         weights: vec![1.0, -1.0, -1.0, 1.0],
//!         n_axons: 2,
//!         n_neurons: 2,
//!         biases: vec![-0.5, -0.5],
//!         axon_sources: vec![InputSource::External(0), InputSource::External(1)],
//!     }],
//!     n_inputs: 2,
//!     n_classes: 2,
//!     output_taps: vec![(0, 0, 0), (0, 1, 1)],
//! };
//! let rt = ServeRuntime::new(&spec, ServeConfig::new(7)).expect("deploy");
//! let response = rt.classify(vec![1.0, 0.0]).expect("serve");
//! assert_eq!(response.predicted, 0);
//! let metrics = rt.shutdown();
//! assert_eq!(metrics.completed, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
mod handle;
mod metrics;
mod queue;
mod runtime;

pub use config::{Backpressure, ServeConfig};
pub use error::ServeError;
pub use handle::{RequestHandle, Response};
pub use metrics::MetricsSnapshot;
pub use queue::{BoundedQueue, PushError};
pub use runtime::ServeRuntime;

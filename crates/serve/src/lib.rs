//! `tn-serve` — a concurrent, batched inference runtime over deployed
//! TrueNorth chip replicas.
//!
//! The offline layers of this workspace answer "how accurate is a
//! deployment?" by sweeping frames over a grid. This crate answers the
//! *serving* question: keep trained networks resident on chip replicas
//! and answer a stream of classification requests with bounded memory,
//! backpressure, and deterministic results.
//!
//! # Architecture (batch-first)
//!
//! ```text
//!  submit()/classify()         BoundedQueue            worker threads
//!  ┌──────────────┐   push   ┌─────────────┐ pop_batch ┌─────────────────┐
//!  │ callers (any │ ───────► │ bounded MPMC│ ────────► │ worker 0        │
//!  │   thread)    │  block/  │   queue     │  (micro-  │  run_frames():  │
//!  └──────┬───────┘  reject  └─────────────┘  batches) │  ≤ kernel_batch │
//!         │                                            │  lockstep lanes │
//!         │ RequestHandle::wait()                      ├─────────────────┤
//!         ▼                                            │ worker 1 …      │
//!  ┌──────────────┐      Completer::complete()         │  (bit-identical │
//!  │   Response   │ ◄───────────────────────────────── │   clone)        │
//!  └──────────────┘   votes pooled across replicas     └─────────────────┘
//! ```
//!
//! * **Cross-request batching** is the core of the serving design: a
//!   worker drains up to [`ServeConfig::batch_max`] queued requests, then
//!   serves them in slices of up to [`ServeConfig::kernel_batch`] frames
//!   through one `tn_chip::nscs::Deployment::run_frames` call. Each slice
//!   ticks as **lockstep lanes** on the compiled kernel
//!   ([`tn_chip::kernel::LaneBatch`]): every tick makes one pass over the
//!   packed crossbar rows and applies each row to all lanes it is active
//!   on, amortizing the crossbar walk — the dominant cost, since the
//!   paper's accuracy recipe makes every request R replicas × spf ticks of
//!   nearly identical crossbar work — over the whole micro-batch.
//! * **Replicas** are the paper's duplication axis: each worker's
//!   [`tn_chip::nscs::Deployment`] carries `cfg.replicas` independently
//!   Bernoulli-sampled spatial copies of the network, and a request's
//!   prediction is the argmax of their pooled votes.
//!   [`Response::agreement`] reports how unanimously the replicas voted —
//!   a live estimate of how much duplication the model still needs.
//! * **Workers** are OS threads that each own a *clone* of one prototype
//!   deployment, so every worker holds bit-identical replicas and any
//!   worker can serve any request.
//! * **Determinism**: a request's spike trains are seeded by
//!   `(cfg.seed, seq)` alone — the same per-frame derivation the offline
//!   evaluator uses — and each lockstep lane draws from its own PRNG
//!   streams seeded exactly as a solo frame's would be, so results never
//!   depend on worker count, queue timing, OS scheduling, or how requests
//!   were fused into kernel batches. See
//!   `results_are_a_function_of_seq_not_worker_count` and
//!   `kernel_batch_size_does_not_change_results` in `runtime.rs`.
//! * **Multi-tenant packing** (optional): [`ServeRuntime::new_packed`]
//!   deploys *several* specs as tenants of one packed chip
//!   ([`tn_chip::pack::PackedDeployment`]): each tenant owns a disjoint
//!   core rectangle, [`ServeRuntime::submit_model`] routes requests by
//!   model id, and a kernel batch mixes tenants into the same lockstep
//!   pass through per-model lane groups. Consolidation buys aggregate
//!   throughput at equal hardware while every tenant's responses stay
//!   bit-identical to a solo runtime serving it alone (per-model
//!   submission order is the determinism key). Per-model
//!   `serve.model.{id}.*` counters ride the telemetry snapshots.
//! * **Quality tiers** (optional): [`ServeConfig::tiers`] names
//!   (replicas × spf × kernel_batch) operating points selectable per
//!   request via [`SubmitRequest::quality`]. Each tier owns its own
//!   deployment (optionally a fresh Bernoulli ensemble *sample* — see
//!   [`QualityTier::sample`] and [`ServeRuntime::resample_tier`]),
//!   responses carry calibrated confidence from the pooled vote margin
//!   ([`vote_margin`] mapped through a per-tier [`CalibrationMap`]
//!   fitted by [`ServeRuntime::calibrate_tiers`]), and a low-confidence
//!   answer on a tier with an `escalate_to` edge is transparently
//!   re-run on the target tier — bit-identical to having submitted
//!   there directly. Per-tier `serve.tier.{t}.*` counters ride the
//!   telemetry snapshots.
//! * **Backpressure**: the submission queue is bounded;
//!   [`Backpressure::Block`] throttles producers, [`Backpressure::Reject`]
//!   sheds load with [`ServeError::QueueFull`].
//! * **Observability & adaptive control** (optional): with
//!   [`ServeConfig::telemetry`] set, an observer thread exports periodic
//!   [`tn_telemetry::Snapshot`]s (serve counters, chip hardware counters,
//!   queue/control gauges, per-stage `enqueue → drain → kernel → vote`
//!   latency spans) through a pluggable [`tn_telemetry::MetricsSink`].
//!   With [`ServeConfig::controller`] set, a [`Controller`] closes the
//!   loop: it adapts the live fusion width within `1 ..= kernel_batch`
//!   from queue depth, rescales replicas from the live agreement
//!   metric, and (with [`ControllerConfig::spf_classes`] configured)
//!   adapts each request class's ticks-per-frame within its
//!   [`SpfClass`] bounds from that class's windowed agreement — all
//!   with hysteresis (dead band + streak + cooldown). The control
//!   math is pure — time arrives inside each [`ControlSample`], stamped
//!   by a [`tn_telemetry::Clock`] — so decisions are testable with a
//!   scripted clock. With both options off (the default), the runtime is
//!   bit-identical to one without the control machinery.
//! * **Shutdown**: [`ServeRuntime::shutdown`] refuses new submissions,
//!   drains every queued request, joins the workers, and returns the
//!   final [`MetricsSnapshot`] (throughput, p50/p90/p99 latency, queue
//!   depth, kernel-batch occupancy, per-worker tick counts, energy per
//!   frame via [`tn_chip::energy`]). Handles never hang: a runtime dropped
//!   mid-request completes its waiters with [`ServeError::ShuttingDown`],
//!   and [`RequestHandle::wait_timeout`] bounds any individual wait.
//! * **Scale-out seam**: [`ServeBackend`] abstracts "something a
//!   front-end can submit to" (this runtime, or `tn-fleet`'s router over
//!   many shard runtimes); [`SubmitRequest::at_seq`] makes submission
//!   *shard-addressable* (a router that owns the sequence counter gets
//!   bit-identical answers from any shard); [`RequestHandle::channel`]
//!   lets a router mint handle/completer pairs for remotely dispatched
//!   requests; and [`pipe::duplex`] provides in-memory duplex streams so
//!   a whole fleet runs deterministically inside one test process.
//!
//! # Example
//!
//! ```
//! use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};
//! use tn_serve::{ServeConfig, ServeRuntime};
//!
//! // A toy 2-input / 2-class network; real callers extract a spec from a
//! // trained model (see `truenorth::serving`).
//! let spec = NetworkDeploySpec {
//!     cores: vec![CoreDeploySpec {
//!         layer: 0,
//!         weights: vec![1.0, -1.0, -1.0, 1.0],
//!         n_axons: 2,
//!         n_neurons: 2,
//!         biases: vec![-0.5, -0.5],
//!         axon_sources: vec![InputSource::External(0), InputSource::External(1)],
//!     }],
//!     n_inputs: 2,
//!     n_classes: 2,
//!     output_taps: vec![(0, 0, 0), (0, 1, 1)],
//! };
//! let cfg = ServeConfig::builder(7)
//!     .replicas(2)
//!     .kernel_batch(8)
//!     .build()
//!     .expect("consistent config");
//! let rt = ServeRuntime::new(&spec, cfg).expect("deploy");
//! let response = rt.classify(vec![1.0, 0.0]).expect("serve");
//! assert_eq!(response.predicted, 0);
//! let metrics = rt.shutdown();
//! assert_eq!(metrics.completed, 1);
//! ```
//!
//! # Migrating from `run_frame_votes` and `with_*` setters
//!
//! The single-frame `Deployment::run_frame_votes` shim (deprecated in
//! 0.4.0) has been **removed**: the batch-first
//! `tn_chip::nscs::Deployment::run_frames` is the only frame-serving
//! entry point. Replace
//! `dep.run_frame_votes(&x, spf, seed, &mut votes)` with
//! `dep.run_frames(&[FrameInput::new(&x, spf, seed)])`. Likewise
//! `ServeConfig`'s chained `with_*` setters are deprecated shims over
//! the validated [`ServeConfigBuilder`]: replace
//! `ServeConfig::new(7).with_replicas(4)` with
//! `ServeConfig::builder(7).replicas(4).build()?`. Results are unchanged
//! bit-for-bit; only the calling conventions moved.
//!
//! # Migrating from the positional `submit*` variants
//!
//! The four positional submit entry points (`submit(inputs)`,
//! `submit_class(inputs, class)`, `submit_model(model, inputs)`,
//! `submit_model_class(model, inputs, class)`) collapsed into one
//! builder-accepting [`ServeRuntime::submit`] in 0.8.0. The old variants
//! remain as `#[deprecated]` shims for one release. Migrate with:
//!
//! ```text
//! rt.submit(inputs)                         -> rt.submit(inputs)  // unchanged: Vec<f32> converts
//! rt.submit_class(inputs, c)                -> rt.submit(SubmitRequest::new(inputs).class(c))
//! rt.submit_model(m, inputs)                -> rt.submit(SubmitRequest::new(inputs).model(m))
//! rt.submit_model_class(m, inputs, c)       -> rt.submit(SubmitRequest::new(inputs).model(m).class(c))
//! ```
//!
//! Routing facts moved off `Response`'s top level into
//! [`Response::served`] ([`ServedAs`]): `r.class` → `r.class()`,
//! `r.model` → `r.model()`, `r.spf` → `r.spf()`, joined by the new
//! `r.tier()` / `r.confidence()` / `r.escalated()`. Results are
//! unchanged bit-for-bit; only the calling conventions moved.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod config;
mod control;
mod error;
mod handle;
mod metrics;
pub mod pipe;
mod queue;
mod request;
mod runtime;
mod tier;

pub use backend::ServeBackend;
pub use config::{Backpressure, ServeConfig, ServeConfigBuilder, TelemetryConfig};
pub use control::{ControlAction, ControlSample, Controller, ControllerConfig, SpfClass};
pub use error::ServeError;
pub use handle::{Completer, RequestHandle, Response, ServedAs};
pub use metrics::{MetricsSnapshot, QueueStats};
pub use queue::{BoundedQueue, PushError};
pub use request::SubmitRequest;
pub use runtime::ServeRuntime;
pub use tier::{vote_margin, CalibrationMap, QualityTier};

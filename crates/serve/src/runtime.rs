//! The serving runtime: worker pool, submission path, voting, adaptive
//! control, telemetry, shutdown.
//!
//! # Determinism contract
//!
//! Every worker owns a *clone* of one prototype [`Deployment`], built
//! (and Bernoulli-sampled) exactly once from `(spec, cfg.seed)`. A
//! request's spike trains are seeded purely by `(cfg.seed, seq)` — the
//! same derivation the offline evaluator uses per frame — so the result
//! of serving request `seq` is a pure function of the config and the
//! submission order, never of worker count, queue timing, or OS
//! scheduling.
//!
//! The adaptive layer preserves this along both control axes:
//!
//! * `kernel_batch` changes are invisible in results by the batch-first
//!   contract (lane fusion never changes any vote), so the queue-depth
//!   controller only moves throughput and latency.
//! * Replica rescaling rebuilds the prototype with
//!   `Deployment::build_with_mode(spec, r, cfg.seed, cfg.connectivity)` —
//!   the *same* call a fresh runtime configured at `r` replicas makes —
//!   so once a scale lands, responses are bit-identical to that fresh
//!   runtime's (see `apply_control_set_replicas_matches_fresh_runtime`).
//!   What autoscaling does make time-dependent is *when* the replica
//!   count changes relative to an in-flight request stream; runtimes
//!   without a controller never rescale and stay bit-identical end to end.
//! * Per-class spf changes ride [`FrameInput::spf`] at serve time — a
//!   request's result is still a pure function of `(seed, seq, spf)` and
//!   no deployment is rebuilt or re-sampled, so the epoch-swap rescale
//!   path above is untouched by the third actuator. What the spf actuator
//!   makes time-dependent is *which* spf an in-flight request is served
//!   at; the served value is reported back in `Response::spf`.
//!
//! # Packed multi-tenant runtimes
//!
//! [`ServeRuntime::new_packed`] serves several models from **one**
//! [`PackedDeployment`]: each worker clones the whole packed chip, and a
//! kernel batch mixes frames for different models into the same lockstep
//! pass (per-model lane groups touch only their tenant's cores). The
//! determinism key becomes per model: the k-th request submitted to model
//! `m` is seeded exactly as the k-th request of a solo runtime serving
//! `m` alone at the same config, and the packing layer guarantees the
//! votes are then bit-identical to that solo runtime's. Replica rescaling
//! is rejected on packed runtimes (repacking mid-flight would move other
//! tenants' cores); the kernel-batch and spf actuators work unchanged.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tn_chip::nscs::{Deployment, FrameInput, NetworkDeploySpec};
use tn_chip::pack::{PackedDeployment, PackedFrame};
use tn_chip::prng::splitmix64;
use tn_telemetry::{emit, Clock, MetricsSink, MonotonicClock, NullSink, Snapshot, SpanRecorder, Stage};

use crate::config::{Backpressure, ServeConfig};
use crate::control::{ControlAction, Controller, SpfClass};
use crate::error::ServeError;
use crate::handle::{pair, Completer, RequestHandle, Response, ServedAs};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use crate::request::SubmitRequest;
use crate::tier::{vote_margin, CalibrationMap, QualityTier};

/// Seed salt for the offline calibration pass
/// ([`ServeRuntime::calibrate_tiers`]): calibration frames draw from a
/// stream disjoint from the serving stream's `(cfg.seed, seq)`
/// derivation, so calibrating never replays a servable frame's spikes.
const CALIBRATION_SALT: u64 = 0x5851_F42D_4C95_7F2D;

/// One queued inference request.
#[derive(Debug)]
struct Job {
    seq: u64,
    /// Request class: selects which live spf serves this job.
    class: usize,
    /// Tenant model the job is addressed to (always 0 on solo runtimes).
    model: usize,
    /// Per-model submission index — the packed determinism key. On solo
    /// runtimes this equals `seq` (one global stream), so the solo seed
    /// derivation is unchanged.
    model_seq: u64,
    /// Quality tier the request asked for (index into
    /// `ControlState::tiers`); `None` rides the default replica set.
    tier: Option<usize>,
    inputs: Vec<f32>,
    submitted: Instant,
    completer: Completer,
}

/// Live per-tier serving state: the configured operating point plus the
/// tier's own prototype deployment, resample epoch, and calibration.
#[derive(Debug)]
struct TierState {
    /// The tier's configured operating point (name, replicas, spf, …).
    tier: QualityTier,
    /// Resolved [`QualityTier::escalate_to`] (index into the tier table;
    /// validated at build time).
    escalate_to: Option<usize>,
    /// Prototype deployment workers clone for this tier (swapped by
    /// [`ServeRuntime::resample_tier`]).
    proto: Mutex<Arc<Deployment>>,
    /// Bumped on every tier prototype swap; workers re-clone when it
    /// moves (same Release/Acquire pairing as the base `epoch`).
    epoch: AtomicU64,
    /// Margin → confidence map (identity until
    /// [`ServeRuntime::calibrate_tiers`] runs).
    calibration: Mutex<Arc<CalibrationMap>>,
}

/// Live actuator state shared by the workers, the observer thread, and
/// [`ServeRuntime::apply_control`].
#[derive(Debug)]
struct ControlState {
    /// Kernel fusion width currently in force (workers read per chunk).
    kernel_batch: AtomicUsize,
    /// Replica count of the current prototype.
    replicas: AtomicUsize,
    /// Cores occupied by the current prototype (energy-model input).
    cores: AtomicUsize,
    /// Live ticks-per-frame per request class (workers read per frame).
    /// Always at least one entry; class 0 is the default class.
    spf: Vec<AtomicUsize>,
    /// Per-class spf bounds ([`crate::control::ControllerConfig::spf_classes`],
    /// or a single degenerate `[cfg.spf, cfg.spf]` class when the spf
    /// actuator is off — then no action can ever move the knob).
    spf_bounds: Vec<SpfClass>,
    /// Bumped on every prototype swap; workers re-clone when it moves.
    epoch: AtomicU64,
    /// Prototype deployment workers clone from (swapped on rescale).
    /// `None` on packed multi-tenant runtimes, which never swap.
    proto: Mutex<Option<Arc<Deployment>>>,
    /// Packed multi-tenant prototype: when set, workers serve every
    /// tenant from a clone of this instead of `proto`, and replica
    /// rescaling is rejected.
    packed: Option<Arc<PackedDeployment>>,
    /// Replica rebuilds that failed (the action was skipped).
    rebuild_failures: AtomicU64,
    /// Deploy spec, kept so rescaling can rebuild at a new replica count
    /// (`None` on packed runtimes — nothing ever rebuilds).
    spec: Option<NetworkDeploySpec>,
    /// Ensemble sample index of the current base prototype (0 = the
    /// default build; moved by [`ControlAction::Resample`], and replica
    /// rescales rebuild at this sample so the two actuators compose).
    sample: AtomicU64,
    /// Quality-tier table (empty unless [`ServeConfig::tiers`] was set;
    /// always empty on packed runtimes).
    tiers: Vec<TierState>,
}

/// Shutdown signal for the observer thread.
type StopFlag = Arc<(Mutex<bool>, Condvar)>;

/// Per-worker telemetry context (present when `cfg.telemetry` is set).
#[derive(Debug, Clone)]
struct WorkerTelemetry {
    spans: Arc<SpanRecorder>,
    clock: Arc<dyn Clock>,
}

/// A persistent multi-threaded inference runtime over deployed chip
/// replicas.
///
/// See the crate docs for the architecture; in short: bounded MPMC
/// queue → worker pool (one cloned deployment each) → per-request
/// replica voting → completion handles, with an optional observer thread
/// that exports telemetry snapshots and runs the adaptive
/// [`Controller`].
#[derive(Debug)]
pub struct ServeRuntime {
    queue: Arc<BoundedQueue<Job>>,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
    observer: Option<JoinHandle<()>>,
    stop: StopFlag,
    control: Arc<ControlState>,
    next_seq: AtomicU64,
    /// Per-model submission counters — the packed determinism key (one
    /// entry, unused in favour of `next_seq`, on solo runtimes).
    model_seqs: Vec<AtomicU64>,
    /// `(n_inputs, n_classes)` per tenant model (one entry on solo
    /// runtimes).
    model_dims: Vec<(usize, usize)>,
    started: Instant,
    cfg: ServeConfig,
    n_inputs: usize,
    n_classes: usize,
}

impl ServeRuntime {
    /// Deploy `spec` and start the worker pool (no telemetry egress; any
    /// configured observer exports go to a [`NullSink`]).
    ///
    /// Building samples the replica crossbars once; each worker then
    /// clones the prototype so all workers hold bit-identical replicas.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] for inconsistent configs,
    /// [`ServeError::Deploy`] if the spec cannot be placed on a chip.
    pub fn new(spec: &NetworkDeploySpec, cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::new_with_sink(spec, cfg, Arc::new(NullSink))
    }

    /// Like [`ServeRuntime::new`], with a [`MetricsSink`] receiving the
    /// observer's periodic [`Snapshot`] exports. The sink is only driven
    /// when [`ServeConfig::telemetry`] is set (a final snapshot is always
    /// emitted at shutdown, so even a short-lived runtime exports at
    /// least one).
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::new`].
    pub fn new_with_sink(
        spec: &NetworkDeploySpec,
        cfg: ServeConfig,
        sink: Arc<dyn MetricsSink>,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        let proto =
            Deployment::build_with_mode(spec, cfg.replicas, cfg.seed, cfg.connectivity)?;
        let n_inputs = proto.n_inputs();
        let n_classes = proto.n_classes();
        // Each tier owns its own deployment, seeded exactly as a runtime
        // *configured* at (tier.replicas, tier.sample) would be — the
        // escalate path's bit-identity contract rests on this.
        let mut tiers = Vec::with_capacity(cfg.tiers.len());
        for t in &cfg.tiers {
            let dep = Deployment::build_with_sample(
                spec,
                t.replicas,
                cfg.seed,
                cfg.connectivity,
                t.sample,
            )?;
            tiers.push(TierState {
                escalate_to: t.escalate_to.as_ref().map(|name| {
                    cfg.tiers
                        .iter()
                        .position(|o| o.name == *name)
                        .expect("escalate_to validated by ServeConfig::validate")
                }),
                proto: Mutex::new(Arc::new(dep)),
                epoch: AtomicU64::new(0),
                calibration: Mutex::new(Arc::new(CalibrationMap::identity())),
                tier: t.clone(),
            });
        }
        let (spf_bounds, spf) = spf_setup(&cfg);
        let control = Arc::new(ControlState {
            kernel_batch: AtomicUsize::new(cfg.kernel_batch),
            replicas: AtomicUsize::new(cfg.replicas),
            cores: AtomicUsize::new(proto.core_count()),
            spf,
            spf_bounds,
            epoch: AtomicU64::new(0),
            proto: Mutex::new(Some(Arc::new(proto))),
            packed: None,
            rebuild_failures: AtomicU64::new(0),
            spec: Some(spec.clone()),
            sample: AtomicU64::new(0),
            tiers,
        });
        Ok(Self::boot(cfg, control, sink, vec![(n_inputs, n_classes)]))
    }

    /// Deploy several specs as tenants of **one** packed chip and start
    /// the worker pool (no telemetry egress). See
    /// [`ServeRuntime::new_packed_with_sink`].
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::new_packed_with_sink`].
    pub fn new_packed(
        specs: &[NetworkDeploySpec],
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::new_packed_with_sink(specs, cfg, Arc::new(NullSink))
    }

    /// Like [`ServeRuntime::new_packed`], with a [`MetricsSink`] for the
    /// observer's [`Snapshot`] exports.
    ///
    /// Each spec is built into its own deployment with the *same*
    /// `(cfg.replicas, cfg.seed, cfg.connectivity)` a solo runtime would
    /// use, then all of them are packed onto disjoint core rectangles of
    /// one 64×64 chip. Tenant `m` of the runtime is `specs[m]`; address
    /// it with [`ServeRuntime::submit_model`]. Every tenant's responses
    /// are bit-identical to a solo runtime serving that spec alone at
    /// this config, keyed by per-model submission order.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] for inconsistent configs or an empty
    /// spec list, [`ServeError::Deploy`] if a spec cannot be placed on
    /// its own chip, [`ServeError::Pack`] if the tenants do not fit one
    /// chip together (structured occupancy detail inside).
    pub fn new_packed_with_sink(
        specs: &[NetworkDeploySpec],
        cfg: ServeConfig,
        sink: Arc<dyn MetricsSink>,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        if specs.is_empty() {
            return Err(ServeError::BadConfig(
                "new_packed requires at least one spec".into(),
            ));
        }
        if !cfg.tiers.is_empty() {
            return Err(ServeError::BadConfig(
                "quality tiers are unavailable on a packed multi-tenant runtime"
                    .into(),
            ));
        }
        let mut deps = Vec::with_capacity(specs.len());
        for spec in specs {
            deps.push(Deployment::build_with_mode(
                spec,
                cfg.replicas,
                cfg.seed,
                cfg.connectivity,
            )?);
        }
        let packed =
            PackedDeployment::pack(&deps).map_err(|e| ServeError::Pack(e.to_string()))?;
        let model_dims: Vec<(usize, usize)> = (0..packed.models())
            .map(|m| {
                let t = packed.model(m);
                (t.n_inputs(), t.n_classes())
            })
            .collect();
        let (spf_bounds, spf) = spf_setup(&cfg);
        let control = Arc::new(ControlState {
            kernel_batch: AtomicUsize::new(cfg.kernel_batch),
            replicas: AtomicUsize::new(cfg.replicas),
            cores: AtomicUsize::new(packed.core_count()),
            spf,
            spf_bounds,
            epoch: AtomicU64::new(0),
            proto: Mutex::new(None),
            packed: Some(Arc::new(packed)),
            rebuild_failures: AtomicU64::new(0),
            spec: None,
            sample: AtomicU64::new(0),
            tiers: Vec::new(),
        });
        Ok(Self::boot(cfg, control, sink, model_dims))
    }

    /// Spawn the worker pool and observer around an assembled
    /// [`ControlState`] — everything [`ServeRuntime::new_with_sink`] and
    /// [`ServeRuntime::new_packed_with_sink`] share.
    fn boot(
        cfg: ServeConfig,
        control: Arc<ControlState>,
        sink: Arc<dyn MetricsSink>,
        model_dims: Vec<(usize, usize)>,
    ) -> Self {
        let (n_inputs, n_classes) = model_dims[0];
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let spans = cfg
            .telemetry
            .as_ref()
            .map(|t| Arc::new(SpanRecorder::new(t.span_ring)));
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(Metrics::new(
            cfg.workers,
            control.spf.len(),
            model_dims.len(),
            control.tiers.len(),
        ));
        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let control = Arc::clone(&control);
            let cfg = cfg.clone();
            let telemetry = spans.as_ref().map(|s| WorkerTelemetry {
                spans: Arc::clone(s),
                clock: Arc::clone(&clock),
            });
            let handle = std::thread::Builder::new()
                .name(format!("tn-serve-worker-{w}"))
                .spawn(move || worker_loop(w, &cfg, &queue, &metrics, &control, telemetry))
                .expect("spawn serve worker");
            workers.push(handle);
        }
        let stop: StopFlag = Arc::new((Mutex::new(false), Condvar::new()));
        let observer = (cfg.controller.is_some() || cfg.telemetry.is_some()).then(|| {
            let ctx = ObserverCtx {
                queue: Arc::clone(&queue),
                metrics: Arc::clone(&metrics),
                control: Arc::clone(&control),
                cfg: cfg.clone(),
                sink,
                clock,
                spans,
                stop: Arc::clone(&stop),
            };
            std::thread::Builder::new()
                .name("tn-serve-observer".into())
                .spawn(move || observer_loop(&ctx))
                .expect("spawn serve observer")
        });
        Self {
            queue,
            metrics,
            workers,
            observer,
            stop,
            control,
            next_seq: AtomicU64::new(0),
            model_seqs: model_dims.iter().map(|_| AtomicU64::new(0)).collect(),
            model_dims,
            started: Instant::now(),
            cfg,
            n_inputs,
            n_classes,
        }
    }

    /// Input channels each request must provide (tenant model 0 on
    /// packed runtimes; see [`ServeRuntime::model_n_inputs`]).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Classes voted on per request (tenant model 0 on packed runtimes).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of tenant models this runtime serves (1 unless built with
    /// [`ServeRuntime::new_packed`]).
    pub fn models(&self) -> usize {
        self.model_dims.len()
    }

    /// Whether this runtime serves several tenants from one packed chip.
    pub fn is_packed(&self) -> bool {
        self.control.packed.is_some()
    }

    /// Input channels tenant `model` expects, `None` if out of range.
    pub fn model_n_inputs(&self, model: usize) -> Option<usize> {
        self.model_dims.get(model).map(|&(n, _)| n)
    }

    /// Classes tenant `model` votes on, `None` if out of range.
    pub fn model_n_classes(&self, model: usize) -> Option<usize> {
        self.model_dims.get(model).map(|&(_, c)| c)
    }

    /// The runtime's configuration (the *initial* knob values; see
    /// [`ServeRuntime::kernel_batch`] and [`ServeRuntime::replicas`] for
    /// the live values under adaptive control).
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Kernel fusion width currently in force.
    pub fn kernel_batch(&self) -> usize {
        self.control.kernel_batch.load(Ordering::Relaxed)
    }

    /// Replica count currently in force.
    pub fn replicas(&self) -> usize {
        self.control.replicas.load(Ordering::Relaxed)
    }

    /// Chip cores occupied by the live deployment (all replicas; moves
    /// with [`ControlAction::SetReplicas`]). This is the denominator of
    /// the static-energy attribution in [`ServeRuntime::metrics`], and
    /// what a fleet shard reports so the router can aggregate
    /// fleet-level energy.
    pub fn cores(&self) -> usize {
        self.control.cores.load(Ordering::Relaxed)
    }

    /// Live ticks-per-frame for each request class. Always at least one
    /// entry; without configured spf classes the single entry is pinned
    /// at [`ServeConfig::spf`].
    pub fn spf_per_class(&self) -> Vec<usize> {
        self.control
            .spf
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of request classes this runtime serves (≥ 1).
    pub fn n_spf_classes(&self) -> usize {
        self.control.spf.len()
    }

    /// Replica rebuilds the observer attempted that failed (the scale
    /// action was skipped; serving continued at the old count).
    pub fn rebuild_failures(&self) -> u64 {
        self.control.rebuild_failures.load(Ordering::Relaxed)
    }

    /// Apply one control action immediately, exactly as the observer
    /// thread would. Public so callers (and the deterministic integration
    /// tests) can drive the actuators without a live controller.
    ///
    /// `SetKernelBatch` takes effect on the next kernel chunk and never
    /// changes results. `SetReplicas` rebuilds the prototype deployment
    /// at the new count — deterministically seeded by `(cfg.seed, count)`
    /// — and workers pick it up at their next micro-batch; requests
    /// served after the swap are bit-identical to a fresh runtime
    /// configured at that count.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] for a zero knob value,
    /// [`ServeError::Deploy`] if the rescaled deployment cannot be built
    /// (the old deployment keeps serving).
    pub fn apply_control(&self, action: &ControlAction) -> Result<(), ServeError> {
        apply_action(&self.control, &self.cfg, action)
    }

    /// Submit one inference request; returns an awaitable handle.
    ///
    /// Accepts anything convertible into a [`SubmitRequest`]: a bare
    /// `Vec<f32>` frame serves on the defaults (model 0, class 0, no
    /// tier), and the builder names a tenant model, request class, or
    /// quality tier:
    ///
    /// ```
    /// # use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};
    /// # use tn_serve::{ServeConfig, ServeRuntime, SubmitRequest};
    /// # let spec = NetworkDeploySpec {
    /// #     cores: vec![CoreDeploySpec {
    /// #         layer: 0,
    /// #         weights: vec![1.0, -1.0, -1.0, 1.0],
    /// #         n_axons: 2,
    /// #         n_neurons: 2,
    /// #         biases: vec![-0.5, -0.5],
    /// #         axon_sources: vec![InputSource::External(0), InputSource::External(1)],
    /// #     }],
    /// #     n_inputs: 2,
    /// #     n_classes: 2,
    /// #     output_taps: vec![(0, 0, 0), (0, 1, 1)],
    /// # };
    /// # let rt = ServeRuntime::new(&spec, ServeConfig::new(7)).expect("deploy");
    /// let handle = rt.submit(vec![1.0, 0.0])?; // defaults: model 0, class 0
    /// assert_eq!(handle.wait()?.predicted, 0);
    /// let handle = rt.submit(SubmitRequest::new(vec![0.0, 1.0]).model(0).class(0))?;
    /// assert_eq!(handle.wait()?.predicted, 1);
    /// # Ok::<(), tn_serve::ServeError>(())
    /// ```
    ///
    /// With [`Backpressure::Block`] this blocks while the queue is full;
    /// with [`Backpressure::Reject`] it fails fast instead.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] / [`ServeError::InputOutOfRange`] on
    /// malformed inputs, [`ServeError::UnknownModel`] /
    /// [`ServeError::UnknownClass`] / [`ServeError::UnknownQuality`] on
    /// routing to something this runtime does not serve,
    /// [`ServeError::QueueFull`] under rejecting backpressure,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(
        &self,
        request: impl Into<SubmitRequest>,
    ) -> Result<RequestHandle, ServeError> {
        self.submit_inner(request.into())
    }

    /// Submit under request class `class`.
    ///
    /// Deprecated shim. Replace `rt.submit_class(inputs, class)` with
    /// the [`SubmitRequest`] builder:
    ///
    /// ```
    /// # use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};
    /// # use tn_serve::{ServeConfig, ServeRuntime, SubmitRequest};
    /// # let spec = NetworkDeploySpec {
    /// #     cores: vec![CoreDeploySpec {
    /// #         layer: 0,
    /// #         weights: vec![1.0, -1.0, -1.0, 1.0],
    /// #         n_axons: 2,
    /// #         n_neurons: 2,
    /// #         biases: vec![-0.5, -0.5],
    /// #         axon_sources: vec![InputSource::External(0), InputSource::External(1)],
    /// #     }],
    /// #     n_inputs: 2,
    /// #     n_classes: 2,
    /// #     output_taps: vec![(0, 0, 0), (0, 1, 1)],
    /// # };
    /// # let rt = ServeRuntime::new(&spec, ServeConfig::new(7)).expect("deploy");
    /// let (inputs, class) = (vec![1.0, 0.0], 0);
    /// // was: rt.submit_class(inputs, class)
    /// let response = rt.submit(SubmitRequest::new(inputs).class(class))?.wait()?;
    /// assert_eq!(response.class(), class);
    /// # Ok::<(), tn_serve::ServeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::submit`].
    #[deprecated(
        since = "0.8.0",
        note = "use submit(SubmitRequest::new(inputs).class(class))"
    )]
    pub fn submit_class(
        &self,
        inputs: Vec<f32>,
        class: usize,
    ) -> Result<RequestHandle, ServeError> {
        self.submit_inner(SubmitRequest::new(inputs).class(class))
    }

    /// Submit to tenant `model` of a packed multi-tenant runtime.
    ///
    /// Deprecated shim. Replace `rt.submit_model(model, inputs)` with
    /// the [`SubmitRequest`] builder (note the argument order: the old
    /// shim took the model *first*, the builder names it explicitly):
    ///
    /// ```
    /// # use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};
    /// # use tn_serve::{ServeConfig, ServeRuntime, SubmitRequest};
    /// # let spec = NetworkDeploySpec {
    /// #     cores: vec![CoreDeploySpec {
    /// #         layer: 0,
    /// #         weights: vec![1.0, -1.0, -1.0, 1.0],
    /// #         n_axons: 2,
    /// #         n_neurons: 2,
    /// #         biases: vec![-0.5, -0.5],
    /// #         axon_sources: vec![InputSource::External(0), InputSource::External(1)],
    /// #     }],
    /// #     n_inputs: 2,
    /// #     n_classes: 2,
    /// #     output_taps: vec![(0, 0, 0), (0, 1, 1)],
    /// # };
    /// # let rt = ServeRuntime::new(&spec, ServeConfig::new(7)).expect("deploy");
    /// let (model, inputs) = (0, vec![1.0, 0.0]);
    /// // was: rt.submit_model(model, inputs)
    /// let response = rt.submit(SubmitRequest::new(inputs).model(model))?.wait()?;
    /// assert_eq!(response.model(), model);
    /// # Ok::<(), tn_serve::ServeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::submit`].
    #[deprecated(
        since = "0.8.0",
        note = "use submit(SubmitRequest::new(inputs).model(model))"
    )]
    pub fn submit_model(
        &self,
        model: usize,
        inputs: Vec<f32>,
    ) -> Result<RequestHandle, ServeError> {
        self.submit_inner(SubmitRequest::new(inputs).model(model))
    }

    /// Submit to tenant `model` under request class `class`.
    ///
    /// Deprecated shim. Replace `rt.submit_model_class(model, inputs,
    /// class)` with the [`SubmitRequest`] builder, which composes both
    /// routing knobs (and any future ones) without positional sprawl:
    ///
    /// ```
    /// # use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};
    /// # use tn_serve::{ServeConfig, ServeRuntime, SubmitRequest};
    /// # let spec = NetworkDeploySpec {
    /// #     cores: vec![CoreDeploySpec {
    /// #         layer: 0,
    /// #         weights: vec![1.0, -1.0, -1.0, 1.0],
    /// #         n_axons: 2,
    /// #         n_neurons: 2,
    /// #         biases: vec![-0.5, -0.5],
    /// #         axon_sources: vec![InputSource::External(0), InputSource::External(1)],
    /// #     }],
    /// #     n_inputs: 2,
    /// #     n_classes: 2,
    /// #     output_taps: vec![(0, 0, 0), (0, 1, 1)],
    /// # };
    /// # let rt = ServeRuntime::new(&spec, ServeConfig::new(7)).expect("deploy");
    /// let (model, inputs, class) = (0, vec![1.0, 0.0], 0);
    /// // was: rt.submit_model_class(model, inputs, class)
    /// let response = rt
    ///     .submit(SubmitRequest::new(inputs).model(model).class(class))?
    ///     .wait()?;
    /// assert_eq!((response.model(), response.class()), (model, class));
    /// # Ok::<(), tn_serve::ServeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::submit`].
    #[deprecated(
        since = "0.8.0",
        note = "use submit(SubmitRequest::new(inputs).model(model).class(class))"
    )]
    pub fn submit_model_class(
        &self,
        model: usize,
        inputs: Vec<f32>,
        class: usize,
    ) -> Result<RequestHandle, ServeError> {
        self.submit_inner(SubmitRequest::new(inputs).model(model).class(class))
    }

    /// The one real submission path: validate routing and inputs, claim
    /// a sequence number, enqueue.
    ///
    /// The packed determinism key is per model: the k-th request
    /// submitted to model `m` is served bit-identically to the k-th
    /// request of a solo runtime deploying only `m` at the same config.
    /// With several submitter threads racing on one model, "k-th" is the
    /// order submissions win the model's counter.
    fn submit_inner(&self, request: SubmitRequest) -> Result<RequestHandle, ServeError> {
        let SubmitRequest {
            frame: inputs,
            model,
            class,
            quality,
            seq: seq_override,
            ..
        } = request;
        let Some(&(n_inputs, _)) = self.model_dims.get(model) else {
            return Err(ServeError::UnknownModel {
                model,
                models: self.model_dims.len(),
            });
        };
        if class >= self.control.spf.len() {
            return Err(ServeError::UnknownClass {
                class,
                classes: self.control.spf.len(),
            });
        }
        let tier = match &quality {
            None => None,
            Some(name) => {
                let Some(idx) = self
                    .control
                    .tiers
                    .iter()
                    .position(|t| t.tier.name == *name)
                else {
                    return Err(ServeError::UnknownQuality {
                        quality: name.clone(),
                        tiers: self.tier_names(),
                    });
                };
                Some(idx)
            }
        };
        if inputs.len() != n_inputs {
            return Err(ServeError::BadInput {
                expected: n_inputs,
                got: inputs.len(),
            });
        }
        if let Some(channel) = inputs.iter().position(|v| !(0.0..=1.0).contains(v)) {
            return Err(ServeError::InputOutOfRange {
                channel,
                value: inputs[channel],
            });
        }
        // Shard-addressable submission: an explicit seq (from a fleet
        // router that owns the global counter) is honored verbatim; the
        // local counter is advanced past it so occasional mixing with
        // automatic submissions cannot hand out a duplicate.
        let seq = match seq_override {
            Some(s) => {
                self.next_seq
                    .fetch_max(s.saturating_add(1), Ordering::Relaxed);
                s
            }
            None => self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        // Solo runtimes key frames by the global sequence number (the
        // original contract); packed runtimes key by the per-model
        // counter so tenant streams match their solo equivalents.
        let model_seq = if self.control.packed.is_some() {
            self.model_seqs[model].fetch_add(1, Ordering::Relaxed)
        } else {
            seq
        };
        let (handle, completer) = pair(seq);
        let job = Job {
            seq,
            class,
            model,
            model_seq,
            tier,
            inputs,
            submitted: Instant::now(),
            completer,
        };
        let outcome = match self.cfg.backpressure {
            Backpressure::Block => self.queue.push(job),
            Backpressure::Reject => self.queue.try_push(job),
        };
        match outcome {
            Ok(()) => {
                self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                self.metrics.record_model_submit(model);
                if let Some(t) = tier {
                    self.metrics.record_tier_submit(t);
                }
                Ok(handle)
            }
            Err(PushError::Full(_)) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit and block for the result (convenience wrapper).
    ///
    /// # Blocking contract
    ///
    /// Blocks the calling thread until a worker serves the request — under
    /// [`Backpressure::Block`] possibly *twice*: first for a queue slot,
    /// then for completion. It never blocks forever: if the runtime shuts
    /// down (or is dropped) before the request is served, the call returns
    /// [`ServeError::ShuttingDown`]. Callers that need a deadline should
    /// use [`ServeRuntime::submit`] with
    /// [`RequestHandle::wait_timeout`](crate::RequestHandle::wait_timeout).
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::submit`], plus any worker-side failure.
    pub fn classify(
        &self,
        request: impl Into<SubmitRequest>,
    ) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Names of the configured quality tiers, in table order (empty
    /// without [`ServeConfig::tiers`]).
    pub fn tier_names(&self) -> Vec<String> {
        self.control
            .tiers
            .iter()
            .map(|t| t.tier.name.clone())
            .collect()
    }

    /// Fit each tier's margin → confidence [`CalibrationMap`] from a
    /// held-out labelled set, on the calling thread.
    ///
    /// Every `(frame, label)` pair is served once per tier on a clone of
    /// that tier's deployment at the tier's spf, seeded from a
    /// calibration-only stream (disjoint from the serving seeds), and the
    /// observed (vote margin, was-correct) pairs are fitted with binned
    /// isotonic regression ([`CalibrationMap::fit`]). Until this runs,
    /// tiers report the raw margin as confidence (identity map).
    ///
    /// Workers pick the new maps up on their next micro-batch; serving
    /// results (votes, predictions) are unaffected — only the reported
    /// confidence and with it the escalate decision move.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] / [`ServeError::InputOutOfRange`] on a
    /// malformed frame. A runtime without tiers (or an empty `frames`)
    /// returns `Ok(())` untouched.
    pub fn calibrate_tiers(
        &self,
        frames: &[(Vec<f32>, usize)],
    ) -> Result<(), ServeError> {
        if self.control.tiers.is_empty() || frames.is_empty() {
            return Ok(());
        }
        for (x, _) in frames {
            if x.len() != self.n_inputs {
                return Err(ServeError::BadInput {
                    expected: self.n_inputs,
                    got: x.len(),
                });
            }
            if let Some(channel) = x.iter().position(|v| !(0.0..=1.0).contains(v)) {
                return Err(ServeError::InputOutOfRange {
                    channel,
                    value: x[channel],
                });
            }
        }
        for state in &self.control.tiers {
            let mut dep = (**state.proto.lock().expect("tier proto lock")).clone();
            dep.set_parallelism(self.cfg.core_threads);
            let spf = state.tier.spf;
            let mut samples = Vec::with_capacity(frames.len());
            for (ci, chunk) in frames.chunks(16).enumerate() {
                let inputs: Vec<FrameInput> = chunk
                    .iter()
                    .enumerate()
                    .map(|(k, (x, _))| {
                        let i = (ci * 16 + k) as u64;
                        let frame_seed = splitmix64(
                            self.cfg.seed
                                ^ i.wrapping_mul(0x9E37_79B9)
                                ^ CALIBRATION_SALT,
                        );
                        FrameInput::new(x, spf, frame_seed)
                    })
                    .collect();
                let results = dep.run_frames(&inputs);
                for ((_, label), votes) in chunk.iter().zip(results) {
                    let r = tally(
                        0,
                        0,
                        0,
                        spf,
                        0,
                        votes.ticks,
                        self.n_classes,
                        &votes.counts,
                        Instant::now(),
                    );
                    samples.push((vote_margin(&r.votes), r.predicted == *label));
                }
            }
            let map = CalibrationMap::fit(&samples, 8);
            *state.calibration.lock().expect("calibration lock") = Arc::new(map);
        }
        Ok(())
    }

    /// Swap the *base* (tier-less) serving deployment for a fresh
    /// Bernoulli ensemble draw — sample `0` reproduces the original
    /// build; see `tn_chip::nscs::Deployment::build_with_sample`.
    /// Shorthand for [`ControlAction::Resample`] via
    /// [`ServeRuntime::apply_control`].
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::apply_control`] on that action (rejected
    /// on packed runtimes; the old deployment keeps serving on a failed
    /// rebuild).
    pub fn resample(&self, sample: u64) -> Result<(), ServeError> {
        self.apply_control(&ControlAction::Resample { sample })
    }

    /// Swap the named tier's deployment for a fresh Bernoulli ensemble
    /// draw. Workers re-clone at their next micro-batch; the tier's
    /// previously fitted calibration is kept (re-run
    /// [`ServeRuntime::calibrate_tiers`] if the draw should be
    /// re-calibrated).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownQuality`] for an unknown tier name,
    /// [`ServeError::Deploy`] if the redraw cannot be built (the old
    /// deployment keeps serving).
    pub fn resample_tier(&self, quality: &str, sample: u64) -> Result<(), ServeError> {
        let Some(state) = self
            .control
            .tiers
            .iter()
            .find(|t| t.tier.name == quality)
        else {
            return Err(ServeError::UnknownQuality {
                quality: quality.to_string(),
                tiers: self.tier_names(),
            });
        };
        let spec = self
            .control
            .spec
            .as_ref()
            .expect("tiered runtimes are solo and keep their spec");
        let dep = Deployment::build_with_sample(
            spec,
            state.tier.replicas,
            self.cfg.seed,
            self.cfg.connectivity,
            sample,
        )?;
        *state.proto.lock().expect("tier proto lock") = Arc::new(dep);
        state.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Live queue-depth / in-flight gauge for admission decisions.
    ///
    /// Three atomic loads — cheap enough to call per request, unlike the
    /// full [`ServeRuntime::metrics`] snapshot. `in_flight` counts
    /// requests accepted but not yet completed (queued plus being
    /// served); a front-end uses it to bound its own concurrency and to
    /// derive `Retry-After` hints when shedding load.
    pub fn queue_stats(&self) -> crate::metrics::QueueStats {
        let submitted = self.metrics.submitted.load(Ordering::Relaxed);
        let completed = self.metrics.completed.load(Ordering::Relaxed);
        crate::metrics::QueueStats {
            depth: self.queue.len(),
            capacity: self.cfg.queue_capacity,
            in_flight: submitted.saturating_sub(completed),
        }
    }

    /// Snapshot the runtime's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.queue.len(),
            self.started.elapsed(),
            self.control.cores.load(Ordering::Relaxed),
        )
    }

    /// Graceful shutdown: refuse new submissions, drain every queued
    /// request, join the workers and observer (the observer emits one
    /// final telemetry snapshot first), and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close_and_join();
        self.metrics()
    }

    fn close_and_join(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // A panicked worker already poisoned its requests' handles
            // (dropped completers → ShuttingDown); propagate for visibility.
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        // Workers are done: every counter the final snapshot should cover
        // is folded. Now let the observer emit it and exit.
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock().expect("stop lock") = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.observer.take() {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Apply one [`ControlAction`] to the shared actuator state.
fn apply_action(
    control: &ControlState,
    cfg: &ServeConfig,
    action: &ControlAction,
) -> Result<(), ServeError> {
    match *action {
        ControlAction::SetKernelBatch(kb) => {
            if kb == 0 {
                return Err(ServeError::BadConfig(
                    "control action kernel_batch must be >= 1".into(),
                ));
            }
            control.kernel_batch.store(kb, Ordering::Relaxed);
            Ok(())
        }
        ControlAction::SetReplicas(r) => {
            if r == 0 {
                return Err(ServeError::BadConfig(
                    "control action replicas must be >= 1".into(),
                ));
            }
            if control.packed.is_some() {
                return Err(ServeError::BadConfig(
                    "replica rescaling is unavailable on a packed multi-tenant runtime"
                        .into(),
                ));
            }
            if r == control.replicas.load(Ordering::Relaxed) {
                return Ok(());
            }
            let spec = control.spec.as_ref().expect("solo runtime keeps its spec");
            // The same build a fresh runtime at `r` replicas performs, so
            // post-swap responses match that runtime bit for bit. Rebuilt
            // at the *current* ensemble sample so a rescale after
            // `Resample` stays on the resampled draw (sample 0 is the
            // plain build, so un-resampled runtimes are unchanged).
            let dep = Deployment::build_with_sample(
                spec,
                r,
                cfg.seed,
                cfg.connectivity,
                control.sample.load(Ordering::Relaxed),
            )?;
            let cores = dep.core_count();
            *control.proto.lock().expect("proto lock") = Some(Arc::new(dep));
            control.replicas.store(r, Ordering::Relaxed);
            control.cores.store(cores, Ordering::Relaxed);
            // Release pairs with the workers' Acquire epoch read: a worker
            // that sees the new epoch also sees the swapped prototype.
            control.epoch.fetch_add(1, Ordering::Release);
            Ok(())
        }
        ControlAction::Resample { sample } => {
            if control.packed.is_some() {
                return Err(ServeError::BadConfig(
                    "ensemble resampling is unavailable on a packed multi-tenant runtime"
                        .into(),
                ));
            }
            let spec = control.spec.as_ref().expect("solo runtime keeps its spec");
            let r = control.replicas.load(Ordering::Relaxed);
            let dep =
                Deployment::build_with_sample(spec, r, cfg.seed, cfg.connectivity, sample)?;
            let cores = dep.core_count();
            *control.proto.lock().expect("proto lock") = Some(Arc::new(dep));
            control.cores.store(cores, Ordering::Relaxed);
            control.sample.store(sample, Ordering::Relaxed);
            control.epoch.fetch_add(1, Ordering::Release);
            Ok(())
        }
        ControlAction::SetSpf { class, spf } => {
            if spf == 0 {
                return Err(ServeError::BadConfig(
                    "control action spf must be >= 1".into(),
                ));
            }
            let Some(slot) = control.spf.get(class) else {
                return Err(ServeError::UnknownClass {
                    class,
                    classes: control.spf.len(),
                });
            };
            // Clamp into the class's bounds: no controller decision (or
            // manual apply_control) can push a class outside its tier.
            // The store rides FrameInput at serve time — no prototype
            // rebuild, so the replica-rescale epoch swap stays untouched
            // and bit-identical.
            slot.store(control.spf_bounds[class].clamp(spf), Ordering::Relaxed);
            Ok(())
        }
    }
}

/// One live spf slot per request class. Without configured spf classes
/// there is a single class pinned at `cfg.spf`; with them, each class
/// starts at `cfg.spf` clamped into its bounds.
fn spf_setup(cfg: &ServeConfig) -> (Vec<SpfClass>, Vec<AtomicUsize>) {
    let spf_bounds: Vec<SpfClass> = cfg
        .controller
        .as_ref()
        .filter(|c| !c.spf_classes.is_empty())
        .map_or_else(
            || vec![SpfClass::new(cfg.spf, cfg.spf)],
            |c| c.spf_classes.clone(),
        );
    let spf: Vec<AtomicUsize> = spf_bounds
        .iter()
        .map(|b| AtomicUsize::new(b.clamp(cfg.spf)))
        .collect();
    (spf_bounds, spf)
}

/// Everything the observer thread needs.
struct ObserverCtx {
    queue: Arc<BoundedQueue<Job>>,
    metrics: Arc<Metrics>,
    control: Arc<ControlState>,
    cfg: ServeConfig,
    sink: Arc<dyn MetricsSink>,
    clock: Arc<dyn Clock>,
    spans: Option<Arc<SpanRecorder>>,
    stop: StopFlag,
}

/// The observer loop: periodically sample metrics, run the controller,
/// apply its actions, and export telemetry snapshots. All *decisions*
/// live in [`Controller::observe`], which consumes pre-stamped samples —
/// this loop only gathers inputs and applies outputs.
fn observer_loop(ctx: &ObserverCtx) {
    let mut controller = ctx
        .cfg
        .controller
        .clone()
        .map(|c| Controller::new(c, ctx.cfg.kernel_batch));
    let sample_every = ctx.cfg.controller.as_ref().map(|c| c.sample_interval);
    let export_every = ctx.cfg.telemetry.as_ref().map(|t| t.interval);
    let tick = [sample_every, export_every]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(Duration::from_millis(100));
    let interval_ns =
        |d: Option<Duration>| d.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    let sample_ns = interval_ns(sample_every);
    let export_ns = interval_ns(export_every);

    let mut seq = 0u64;
    let mut window_start = ctx.metrics.agreement_progress();
    let n_classes = ctx.metrics.n_classes();
    let mut class_window_start: Vec<(u64, u64)> = (0..n_classes)
        .map(|c| ctx.metrics.class_agreement_progress(c))
        .collect();
    let start_ns = ctx.clock.now_ns();
    let mut last_sample_ns = start_ns;
    let mut last_export_ns = start_ns;
    loop {
        let stopped = {
            let (lock, cvar) = &*ctx.stop;
            let guard = lock.lock().expect("stop lock");
            let (guard, _) = cvar.wait_timeout(guard, tick).expect("stop wait");
            *guard
        };
        let now_ns = ctx.clock.now_ns();

        if let (Some(ctl), Some(period)) = (controller.as_mut(), sample_ns) {
            if !stopped && now_ns.saturating_sub(last_sample_ns) >= period {
                let progress = ctx.metrics.agreement_progress();
                let class_progress: Vec<(u64, u64)> = (0..n_classes)
                    .map(|c| ctx.metrics.class_agreement_progress(c))
                    .collect();
                let sample = crate::control::ControlSample {
                    t_ns: now_ns,
                    queue_depth: ctx.queue.len(),
                    queue_capacity: ctx.cfg.queue_capacity,
                    kernel_batch: ctx.control.kernel_batch.load(Ordering::Relaxed),
                    replicas: ctx.control.replicas.load(Ordering::Relaxed),
                    mean_agreement: Metrics::window_agreement(window_start, progress),
                    spf: ctx
                        .control
                        .spf
                        .iter()
                        .map(|s| s.load(Ordering::Relaxed))
                        .collect(),
                    class_agreement: class_window_start
                        .iter()
                        .zip(&class_progress)
                        .map(|(&prev, &now)| Metrics::window_agreement(prev, now))
                        .collect(),
                };
                window_start = progress;
                class_window_start = class_progress;
                last_sample_ns = now_ns;
                for action in ctl.observe(&sample) {
                    if apply_action(&ctx.control, &ctx.cfg, &action).is_err() {
                        ctx.control.rebuild_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        let export_due = export_ns
            .is_some_and(|period| now_ns.saturating_sub(last_export_ns) >= period);
        if export_due || stopped {
            emit(&*ctx.sink, &assemble_snapshot(ctx, seq, now_ns));
            seq += 1;
            last_export_ns = now_ns;
        }
        if stopped {
            return;
        }
    }
}

/// Assemble one telemetry [`Snapshot`] from the live runtime state.
fn assemble_snapshot(ctx: &ObserverCtx, seq: u64, now_ns: u64) -> Snapshot {
    let mut snap = Snapshot::new(seq, now_ns);
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    snap.counter("serve.submitted", load(&ctx.metrics.submitted))
        .counter("serve.completed", load(&ctx.metrics.completed))
        .counter("serve.rejected", load(&ctx.metrics.rejected))
        .counter("serve.batches", load(&ctx.metrics.batches))
        .counter("serve.kernel_batches", load(&ctx.metrics.kernel_batches))
        .counter("serve.ticks", load(&ctx.metrics.ticks))
        .counter("serve.rebuild_failures", load(&ctx.control.rebuild_failures));
    let chip = ctx.metrics.chip_export();
    chip.for_each(|name, value| {
        snap.counter(name, value);
    });
    // Sparse-walk observability (all zero while serving runs on the
    // interpreter): how much crossbar work activity tracking elided.
    snap.counter("serve.rows_skipped", chip.rows_skipped)
        .counter("serve.cores_skipped", chip.cores_skipped)
        .gauge("serve.spike_density", chip.spike_density());
    let depth = ctx.queue.len();
    let (completed, agreement_micros) = ctx.metrics.agreement_progress();
    let submitted = ctx.metrics.submitted.load(Ordering::Relaxed);
    let mean_agreement = Metrics::window_agreement((0, 0), (completed, agreement_micros));
    snap.gauge("serve.queue_depth", depth as f64)
        .gauge(
            "serve.in_flight",
            submitted.saturating_sub(completed) as f64,
        )
        .gauge(
            "serve.queue_fill",
            depth as f64 / ctx.cfg.queue_capacity.max(1) as f64,
        )
        .gauge(
            "serve.kernel_batch",
            ctx.control.kernel_batch.load(Ordering::Relaxed) as f64,
        )
        .gauge(
            "serve.replicas",
            ctx.control.replicas.load(Ordering::Relaxed) as f64,
        )
        .gauge(
            "serve.cores",
            ctx.control.cores.load(Ordering::Relaxed) as f64,
        )
        .gauge(
            "serve.mean_agreement",
            f64::from(mean_agreement.unwrap_or(0.0)),
        );
    // Per tenant model: submission/completion/tick counters plus mean
    // agreement. Solo runtimes export a single `serve.model.0.*` family
    // whose counters mirror the global ones, so consumers can treat the
    // per-model dimension as always present; on packed runtimes the
    // model completion counters sum to `serve.completed`.
    for m in 0..ctx.metrics.n_models() {
        let (submitted, completed, ticks, agreement_micros) = ctx.metrics.model_progress(m);
        let mean = Metrics::window_agreement((0, 0), (completed, agreement_micros));
        snap.counter(&format!("serve.model.{m}.submitted"), submitted)
            .counter(&format!("serve.model.{m}.completed"), completed)
            .counter(&format!("serve.model.{m}.ticks"), ticks)
            .gauge(
                &format!("serve.model.{m}.mean_agreement"),
                f64::from(mean.unwrap_or(0.0)),
            );
    }
    // Per quality tier (only on tiered runtimes): submissions and
    // completions counted against the *requested* tier, how many answers
    // took the escalate hop, ticks spent (escalation passes included),
    // and the mean calibrated confidence of the delivered answers.
    for t in 0..ctx.metrics.n_tiers() {
        let (submitted, completed, escalated, ticks, confidence_micros) =
            ctx.metrics.tier_progress(t);
        let mean_confidence = if completed == 0 {
            0.0
        } else {
            confidence_micros as f64 / 1e6 / completed as f64
        };
        snap.counter(&format!("serve.tier.{t}.submitted"), submitted)
            .counter(&format!("serve.tier.{t}.completed"), completed)
            .counter(&format!("serve.tier.{t}.escalated"), escalated)
            .counter(&format!("serve.tier.{t}.ticks"), ticks)
            .gauge(&format!("serve.tier.{t}.mean_confidence"), mean_confidence);
    }
    // Live spf per request class: `serve.spf` is class 0 (the default
    // class every plain submit lands in); further classes get suffixed
    // gauges.
    for (c, slot) in ctx.control.spf.iter().enumerate() {
        let spf = slot.load(Ordering::Relaxed) as f64;
        if c == 0 {
            snap.gauge("serve.spf", spf);
        } else {
            snap.gauge(&format!("serve.spf.{c}"), spf);
        }
    }
    if let Some(spans) = &ctx.spans {
        for (stage, stats) in Stage::ALL.iter().zip(spans.stage_stats()) {
            snap.stage(*stage, stats);
        }
    }
    snap
}

/// Per-worker serving loop: drain micro-batches until closed-and-empty,
/// slicing each drained batch into kernel-level lockstep lane batches of up
/// to the live `kernel_batch` frames served by one `Deployment::run_frames`
/// call. Each frame's seed is a pure function of `(cfg.seed, seq)`, so how
/// frames land in batches never affects results. Between micro-batches the
/// worker checks the control epoch and re-clones the prototype if the
/// observer swapped it (replica rescaling), folding the old deployment's
/// hardware-counter delta first so nothing is lost.
fn worker_loop(
    worker: usize,
    cfg: &ServeConfig,
    queue: &BoundedQueue<Job>,
    metrics: &Metrics,
    control: &ControlState,
    telemetry: Option<WorkerTelemetry>,
) {
    if let Some(packed) = &control.packed {
        packed_worker_loop(worker, cfg, queue, metrics, control, telemetry, packed);
        return;
    }
    let mut dep: Deployment = {
        let proto = control.proto.lock().expect("proto lock");
        (**proto.as_ref().expect("solo runtime has a prototype")).clone()
    };
    // Frames run on the deployment's compiled fast path (built once in the
    // prototype and shared by every worker clone); `core_threads` optionally
    // fans each tick's cores across threads inside this worker.
    dep.set_parallelism(cfg.core_threads);
    let mut local_epoch = control.epoch.load(Ordering::Acquire);
    let n_classes = dep.n_classes();
    // Tiered runtimes: one clone of every tier's deployment, re-cloned
    // when that tier's epoch moves (resample). Empty on untiered
    // runtimes, making every tier loop below a no-op.
    let mut tier_deps: Vec<Deployment> = control
        .tiers
        .iter()
        .map(|t| {
            let mut d = (**t.proto.lock().expect("tier proto lock")).clone();
            d.set_parallelism(cfg.core_threads);
            d
        })
        .collect();
    let mut tier_epochs: Vec<u64> = control
        .tiers
        .iter()
        .map(|t| t.epoch.load(Ordering::Acquire))
        .collect();
    let mut tier_exports: Vec<_> = tier_deps.iter().map(Deployment::counter_export).collect();
    let mut batch: Vec<Job> = Vec::with_capacity(cfg.batch_max);
    let mut last_export = dep.counter_export();
    loop {
        let drain_from = telemetry.as_ref().map(|t| t.clock.now_ns());
        if !queue.pop_batch(cfg.batch_max, &mut batch) {
            break;
        }
        if let (Some(t), Some(t0)) = (&telemetry, drain_from) {
            let now = t.clock.now_ns();
            t.spans.record(Stage::Drain, t0, now.saturating_sub(t0));
            // Enqueue: the longest queue wait in the drained batch.
            if let Some(wait) = batch.iter().map(|j| j.submitted.elapsed()).max() {
                let ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
                t.spans.record(Stage::Enqueue, now.saturating_sub(ns), ns);
            }
        }
        let epoch = control.epoch.load(Ordering::Acquire);
        if epoch != local_epoch {
            metrics.fold_chip(&dep.counter_export().delta_since(&last_export));
            dep = {
                let proto = control.proto.lock().expect("proto lock");
                (**proto.as_ref().expect("solo runtime has a prototype")).clone()
            };
            dep.set_parallelism(cfg.core_threads);
            last_export = dep.counter_export();
            local_epoch = epoch;
        }
        for (t, state) in control.tiers.iter().enumerate() {
            let e = state.epoch.load(Ordering::Acquire);
            if e != tier_epochs[t] {
                metrics
                    .fold_chip(&tier_deps[t].counter_export().delta_since(&tier_exports[t]));
                tier_deps[t] = (**state.proto.lock().expect("tier proto lock")).clone();
                tier_deps[t].set_parallelism(cfg.core_threads);
                tier_exports[t] = tier_deps[t].counter_export();
                tier_epochs[t] = e;
            }
        }
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        // Route: tier-less jobs keep the default fusion path below;
        // tiered jobs are grouped per tier and served on that tier's
        // deployment at its fixed operating point.
        let mut tier_jobs: Vec<Vec<Job>> =
            (0..control.tiers.len()).map(|_| Vec::new()).collect();
        let mut default_jobs: Vec<Job> = Vec::with_capacity(batch.len());
        for job in batch.drain(..) {
            match job.tier {
                Some(t) => tier_jobs[t].push(job),
                None => default_jobs.push(job),
            }
        }
        while !default_jobs.is_empty() {
            let take = control
                .kernel_batch
                .load(Ordering::Relaxed)
                .max(1)
                .min(default_jobs.len());
            let chunk: Vec<Job> = default_jobs.drain(..take).collect();
            // Same per-frame derivation as the offline evaluator: the
            // request's sequence number plays the role of the frame index.
            // Each frame runs at its class's *live* spf — the controller's
            // third actuator rides FrameInput, so no deployment rebuild is
            // involved (run_frames groups consecutive same-spf frames into
            // lockstep lanes on its own).
            let spfs: Vec<usize> = chunk
                .iter()
                .map(|job| control.spf[job.class].load(Ordering::Relaxed).max(1))
                .collect();
            let frames: Vec<FrameInput> = chunk
                .iter()
                .zip(&spfs)
                .map(|(job, &spf)| {
                    let frame_seed = splitmix64(cfg.seed ^ job.seq.wrapping_mul(0x9E37_79B9));
                    FrameInput::new(&job.inputs, spf, frame_seed)
                })
                .collect();
            let kernel_from = telemetry.as_ref().map(|t| t.clock.now_ns());
            let results = dep.run_frames(&frames);
            if let (Some(t), Some(t0)) = (&telemetry, kernel_from) {
                t.spans
                    .record(Stage::Kernel, t0, t.clock.now_ns().saturating_sub(t0));
            }
            metrics.kernel_batches.fetch_add(1, Ordering::Relaxed);
            drop(frames);
            let vote_from = telemetry.as_ref().map(|t| t.clock.now_ns());
            for ((job, votes), spf) in chunk.into_iter().zip(results).zip(spfs) {
                let response = tally(
                    job.seq,
                    job.class,
                    job.model,
                    spf,
                    worker,
                    votes.ticks,
                    n_classes,
                    &votes.counts,
                    job.submitted,
                );
                metrics.record_completion(
                    worker,
                    job.class,
                    job.model,
                    votes.ticks,
                    response.latency,
                    response.agreement,
                );
                job.completer.complete(Ok(response));
            }
            if let (Some(t), Some(t0)) = (&telemetry, vote_from) {
                t.spans
                    .record(Stage::Vote, t0, t.clock.now_ns().saturating_sub(t0));
            }
        }
        for (t, jobs) in tier_jobs.into_iter().enumerate() {
            if !jobs.is_empty() {
                serve_tier_jobs(
                    t,
                    jobs,
                    worker,
                    cfg,
                    metrics,
                    control,
                    telemetry.as_ref(),
                    &mut tier_deps,
                    n_classes,
                );
            }
        }
        // Fold this batch's hardware work into the global counters.
        let export = dep.counter_export();
        metrics.fold_chip(&export.delta_since(&last_export));
        last_export = export;
        for (d, le) in tier_deps.iter().zip(tier_exports.iter_mut()) {
            let export = d.counter_export();
            metrics.fold_chip(&export.delta_since(le));
            *le = export;
        }
    }
    metrics.fold_chip(&dep.counter_export().delta_since(&last_export));
    for (d, le) in tier_deps.iter().zip(&tier_exports) {
        metrics.fold_chip(&d.counter_export().delta_since(le));
    }
}

/// Serve one tier's share of a drained micro-batch on that tier's
/// deployment clone, in kernel chunks of the tier's fusion width
/// (`kernel_batch == 0` inherits the live default width).
///
/// Frame seeds keep the global `(cfg.seed, seq)` derivation, so a tiered
/// request's spikes depend only on its submission order — and an
/// escalated re-run on the target tier is *bit-identical* to having
/// submitted the same `seq` to that tier directly (same deployment
/// clone, same spf, same seed; only `ticks` — which sums both passes —
/// and the `escalated` flag differ).
#[allow(clippy::too_many_arguments)]
fn serve_tier_jobs(
    tier_idx: usize,
    mut jobs: Vec<Job>,
    worker: usize,
    cfg: &ServeConfig,
    metrics: &Metrics,
    control: &ControlState,
    telemetry: Option<&WorkerTelemetry>,
    tier_deps: &mut [Deployment],
    n_classes: usize,
) {
    let state = &control.tiers[tier_idx];
    let width = if state.tier.kernel_batch == 0 {
        control.kernel_batch.load(Ordering::Relaxed).max(1)
    } else {
        state.tier.kernel_batch
    };
    let calibration = Arc::clone(&state.calibration.lock().expect("calibration lock"));
    while !jobs.is_empty() {
        let take = width.min(jobs.len());
        let chunk: Vec<Job> = jobs.drain(..take).collect();
        let frames: Vec<FrameInput> = chunk
            .iter()
            .map(|job| {
                let frame_seed = splitmix64(cfg.seed ^ job.seq.wrapping_mul(0x9E37_79B9));
                FrameInput::new(&job.inputs, state.tier.spf, frame_seed)
            })
            .collect();
        let kernel_from = telemetry.map(|t| t.clock.now_ns());
        let results = tier_deps[tier_idx].run_frames(&frames);
        if let (Some(t), Some(t0)) = (telemetry, kernel_from) {
            t.spans
                .record(Stage::Kernel, t0, t.clock.now_ns().saturating_sub(t0));
        }
        metrics.kernel_batches.fetch_add(1, Ordering::Relaxed);
        drop(frames);
        let vote_from = telemetry.map(|t| t.clock.now_ns());
        for (job, votes) in chunk.into_iter().zip(results) {
            let mut response = tally(
                job.seq,
                job.class,
                job.model,
                state.tier.spf,
                worker,
                votes.ticks,
                n_classes,
                &votes.counts,
                job.submitted,
            );
            let mut confidence = calibration.apply(vote_margin(&response.votes));
            let mut escalated = false;
            let mut served_tier = tier_idx;
            let mut total_ticks = response.ticks;
            if confidence < state.tier.confidence_target {
                if let Some(target) = state.escalate_to {
                    // Single hop: re-run the same frame (same seed) on the
                    // target tier's deployment at the target's spf.
                    let tgt = &control.tiers[target];
                    let frame_seed =
                        splitmix64(cfg.seed ^ job.seq.wrapping_mul(0x9E37_79B9));
                    let redo_frames =
                        [FrameInput::new(&job.inputs, tgt.tier.spf, frame_seed)];
                    let redo = tier_deps[target].run_frames(&redo_frames);
                    metrics.kernel_batches.fetch_add(1, Ordering::Relaxed);
                    let rerun = tally(
                        job.seq,
                        job.class,
                        job.model,
                        tgt.tier.spf,
                        worker,
                        redo[0].ticks,
                        n_classes,
                        &redo[0].counts,
                        job.submitted,
                    );
                    let tgt_calibration =
                        Arc::clone(&tgt.calibration.lock().expect("calibration lock"));
                    confidence = tgt_calibration.apply(vote_margin(&rerun.votes));
                    total_ticks += rerun.ticks;
                    response = rerun;
                    response.ticks = total_ticks;
                    escalated = true;
                    served_tier = target;
                }
            }
            response.served.tier = Some(control.tiers[served_tier].tier.name.clone());
            response.served.confidence = confidence;
            response.served.escalated = escalated;
            metrics.record_completion(
                worker,
                job.class,
                job.model,
                total_ticks,
                response.latency,
                response.agreement,
            );
            metrics.record_tier_completion(tier_idx, escalated, total_ticks, confidence);
            job.completer.complete(Ok(response));
        }
        if let (Some(t), Some(t0)) = (telemetry, vote_from) {
            t.spans
                .record(Stage::Vote, t0, t.clock.now_ns().saturating_sub(t0));
        }
    }
}

/// The packed multi-tenant worker loop: same batching, telemetry, and
/// counter folding as the solo loop, but one clone of the whole
/// [`PackedDeployment`] serves every tenant, frame seeds come from the
/// per-model submission index, and a kernel chunk may mix models — the
/// packed `run_frames` buckets them into per-tenant lane groups ticked in
/// the same lockstep pass. There is no epoch check: packed prototypes
/// never swap (replica rescaling is rejected up front).
fn packed_worker_loop(
    worker: usize,
    cfg: &ServeConfig,
    queue: &BoundedQueue<Job>,
    metrics: &Metrics,
    control: &ControlState,
    telemetry: Option<WorkerTelemetry>,
    proto: &Arc<PackedDeployment>,
) {
    let mut dep: PackedDeployment = (**proto).clone();
    dep.set_parallelism(cfg.core_threads);
    let mut batch: Vec<Job> = Vec::with_capacity(cfg.batch_max);
    let mut last_export = dep.counter_export();
    loop {
        let drain_from = telemetry.as_ref().map(|t| t.clock.now_ns());
        if !queue.pop_batch(cfg.batch_max, &mut batch) {
            break;
        }
        if let (Some(t), Some(t0)) = (&telemetry, drain_from) {
            let now = t.clock.now_ns();
            t.spans.record(Stage::Drain, t0, now.saturating_sub(t0));
            if let Some(wait) = batch.iter().map(|j| j.submitted.elapsed()).max() {
                let ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
                t.spans.record(Stage::Enqueue, now.saturating_sub(ns), ns);
            }
        }
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        while !batch.is_empty() {
            // `kernel_batch` is a *per-tenant* fusion width here: one
            // grouped pass takes up to `width` frames of every model, so
            // each tenant's lane occupancy — and with it the per-model
            // crossbar amortization — matches a solo runtime's at the
            // same setting, while the tenants split the fixed per-pass
            // cost. Slicing model-blind would instead divide the lanes
            // among tenants and serve fewer frames per crossbar walk
            // than the solo runtimes being consolidated.
            let width = control.kernel_batch.load(Ordering::Relaxed).max(1);
            let mut taken = vec![0usize; dep.models()];
            let mut chunk: Vec<Job> = Vec::new();
            let mut rest: Vec<Job> = Vec::with_capacity(batch.len());
            for job in batch.drain(..) {
                if taken[job.model] < width {
                    taken[job.model] += 1;
                    chunk.push(job);
                } else {
                    rest.push(job);
                }
            }
            batch = rest;
            let spfs: Vec<usize> = chunk
                .iter()
                .map(|job| control.spf[job.class].load(Ordering::Relaxed).max(1))
                .collect();
            // The per-model submission index plays the role the global
            // sequence number plays solo, so tenant m's k-th request is
            // seeded exactly as a solo runtime's k-th request.
            let frames: Vec<PackedFrame> = chunk
                .iter()
                .zip(&spfs)
                .map(|(job, &spf)| {
                    let frame_seed =
                        splitmix64(cfg.seed ^ job.model_seq.wrapping_mul(0x9E37_79B9));
                    PackedFrame {
                        model: job.model,
                        frame: FrameInput::new(&job.inputs, spf, frame_seed),
                    }
                })
                .collect();
            let kernel_from = telemetry.as_ref().map(|t| t.clock.now_ns());
            let results = dep.run_frames(&frames);
            if let (Some(t), Some(t0)) = (&telemetry, kernel_from) {
                t.spans
                    .record(Stage::Kernel, t0, t.clock.now_ns().saturating_sub(t0));
            }
            metrics.kernel_batches.fetch_add(1, Ordering::Relaxed);
            drop(frames);
            let vote_from = telemetry.as_ref().map(|t| t.clock.now_ns());
            for ((job, votes), spf) in chunk.into_iter().zip(results).zip(spfs) {
                let n_classes = dep.model(job.model).n_classes();
                let response = tally(
                    job.seq,
                    job.class,
                    job.model,
                    spf,
                    worker,
                    votes.ticks,
                    n_classes,
                    &votes.counts,
                    job.submitted,
                );
                metrics.record_completion(
                    worker,
                    job.class,
                    job.model,
                    votes.ticks,
                    response.latency,
                    response.agreement,
                );
                job.completer.complete(Ok(response));
            }
            if let (Some(t), Some(t0)) = (&telemetry, vote_from) {
                t.spans
                    .record(Stage::Vote, t0, t.clock.now_ns().saturating_sub(t0));
            }
        }
        let export = dep.counter_export();
        metrics.fold_chip(&export.delta_since(&last_export));
        last_export = export;
    }
    metrics.fold_chip(&dep.counter_export().delta_since(&last_export));
}

/// Pool replica votes into a [`Response`]. Ties break toward the lowest
/// class index, which keeps tallies deterministic.
#[allow(clippy::too_many_arguments)]
fn tally(
    seq: u64,
    class: usize,
    model: usize,
    spf: usize,
    worker: usize,
    ticks: u64,
    n_classes: usize,
    votes: &[u64],
    submitted: Instant,
) -> Response {
    let replicas = votes.len() / n_classes;
    let argmax = |lane: &[u64]| {
        lane.iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map_or(0, |(i, _)| i)
    };
    let mut pooled = vec![0u64; n_classes];
    let mut replica_predictions = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let lane = &votes[r * n_classes..(r + 1) * n_classes];
        replica_predictions.push(argmax(lane));
        for (p, &v) in pooled.iter_mut().zip(lane) {
            *p += v;
        }
    }
    let predicted = argmax(&pooled);
    let agreeing = replica_predictions.iter().filter(|&&p| p == predicted).count();
    // Raw-margin confidence; tiered paths overwrite it with the tier's
    // calibrated value before completing the request.
    let margin = vote_margin(&pooled);
    Response {
        seq,
        predicted,
        votes: pooled,
        replica_predictions,
        agreement: agreeing as f32 / replicas.max(1) as f32,
        served: ServedAs::new(class, model, spf).with_confidence(margin),
        worker,
        ticks,
        latency: submitted.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TelemetryConfig;
    use tn_chip::nscs::{CoreDeploySpec, InputSource};
    use tn_telemetry::MemorySink;

    /// 2-input, 2-class, single-core spec with deterministic ±1 weights:
    /// input channel k drives class k.
    fn xor_free_spec() -> NetworkDeploySpec {
        NetworkDeploySpec {
            cores: vec![CoreDeploySpec {
                layer: 0,
                weights: vec![1.0, -1.0, -1.0, 1.0],
                n_axons: 2,
                n_neurons: 2,
                biases: vec![-0.5, -0.5],
                axon_sources: vec![InputSource::External(0), InputSource::External(1)],
            }],
            n_inputs: 2,
            n_classes: 2,
            output_taps: vec![(0, 0, 0), (0, 1, 1)],
        }
    }

    /// 3-input, 3-class single-core spec (identity ±1 weights) — a second
    /// tenant with a *different* shape from [`xor_free_spec`].
    fn three_class_spec() -> NetworkDeploySpec {
        NetworkDeploySpec {
            cores: vec![CoreDeploySpec {
                layer: 0,
                weights: vec![1.0, -1.0, -1.0, -1.0, 1.0, -1.0, -1.0, -1.0, 1.0],
                n_axons: 3,
                n_neurons: 3,
                biases: vec![-0.5, -0.5, -0.5],
                axon_sources: vec![
                    InputSource::External(0),
                    InputSource::External(1),
                    InputSource::External(2),
                ],
            }],
            n_inputs: 3,
            n_classes: 3,
            output_taps: vec![(0, 0, 0), (0, 1, 1), (0, 2, 2)],
        }
    }

    fn runtime(cfg: ServeConfig) -> ServeRuntime {
        ServeRuntime::new(&xor_free_spec(), cfg).expect("runtime")
    }

    #[test]
    fn classifies_by_hot_channel() {
        let rt = runtime(
            ServeConfig::builder(5)
                .replicas(2)
                .workers(2)
                .build()
                .expect("cfg"),
        );
        let r0 = rt.classify(vec![1.0, 0.0]).expect("serve");
        assert_eq!(r0.predicted, 0, "votes {:?}", r0.votes);
        let r1 = rt.classify(vec![0.0, 1.0]).expect("serve");
        assert_eq!(r1.predicted, 1, "votes {:?}", r1.votes);
        assert_eq!(r1.replica_predictions.len(), 2);
        assert!(r1.agreement > 0.0);
        assert_eq!(r1.ticks, 8, "spf 8, depth 1");
    }

    #[test]
    fn rejects_malformed_inputs() {
        let rt = runtime(ServeConfig::new(5));
        assert_eq!(
            rt.submit(vec![0.5]).unwrap_err(),
            ServeError::BadInput {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            rt.submit(vec![0.5, 1.5]).unwrap_err(),
            ServeError::InputOutOfRange {
                channel: 1,
                value: 1.5
            }
        );
    }

    #[test]
    fn results_are_a_function_of_seq_not_worker_count() {
        let serve_all = |workers: usize| {
            let rt = runtime(
                ServeConfig::builder(11)
                    .replicas(3)
                    .workers(workers)
                    .batch_max(4)
                    .build()
                    .expect("cfg"),
            );
            let handles: Vec<_> = (0..24)
                .map(|i| {
                    let x = (i % 5) as f32 / 4.0;
                    rt.submit(vec![x, 1.0 - x]).expect("submit")
                })
                .collect();
            let results: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().expect("serve");
                    (r.seq, r.predicted, r.votes, r.replica_predictions)
                })
                .collect();
            rt.shutdown();
            results
        };
        assert_eq!(serve_all(1), serve_all(4));
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        // One slow-ish worker, many queued requests: shutdown must serve
        // them all, not drop them.
        let rt = runtime(
            ServeConfig::builder(3)
                .workers(1)
                .spf(32)
                .queue_capacity(64)
                .build()
                .expect("cfg"),
        );
        let handles: Vec<_> = (0..32)
            .map(|_| rt.submit(vec![1.0, 0.0]).expect("submit"))
            .collect();
        let snap = rt.shutdown();
        assert_eq!(snap.completed, 32);
        assert_eq!(snap.queue_depth, 0);
        for h in handles {
            assert!(h.wait().is_ok(), "drained request must have completed");
        }
    }

    #[test]
    fn reject_backpressure_sheds_load() {
        // Capacity-1 queue with a slow worker: a burst must trip QueueFull.
        let rt = runtime(
            ServeConfig::builder(3)
                .workers(1)
                .spf(256)
                .queue_capacity(1)
                .batch_max(1)
                .backpressure(Backpressure::Reject)
                .build()
                .expect("cfg"),
        );
        let mut rejected = 0;
        let mut handles = Vec::new();
        for _ in 0..64 {
            match rt.submit(vec![1.0, 0.0]) {
                Ok(h) => handles.push(h),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected > 0, "burst should overflow a capacity-1 queue");
        let snap = rt.metrics();
        assert_eq!(snap.rejected, rejected);
        for h in handles {
            h.wait().expect("accepted requests still complete");
        }
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let rt = runtime(ServeConfig::new(2));
        let snap = {
            let queue = Arc::clone(&rt.queue);
            queue.close();
            rt.metrics()
        };
        assert_eq!(rt.submit(vec![0.5, 0.5]).unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(snap.rejected, 0, "shutdown refusals are not load shedding");
    }

    #[test]
    fn metrics_account_every_request() {
        let rt = runtime(
            ServeConfig::builder(8)
                .workers(2)
                .replicas(2)
                .build()
                .expect("cfg"),
        );
        for i in 0..20 {
            let x = (i % 3) as f32 / 2.0;
            rt.classify(vec![x, 1.0 - x]).expect("serve");
        }
        let snap = rt.shutdown();
        assert_eq!(snap.submitted, 20);
        assert_eq!(snap.completed, 20);
        assert_eq!(snap.per_worker_frames.iter().sum::<u64>(), 20);
        assert_eq!(snap.ticks, 20 * 8);
        assert!(snap.p50_latency > std::time::Duration::ZERO);
        assert!(snap.energy.synaptic_ops > 0);
        assert!(snap.joules_per_frame() > 0.0);
        assert!(snap.kernel_batches > 0, "batched path must be exercised");
        assert!(snap.mean_kernel_batch_size() >= 1.0);
        assert!(snap.mean_agreement > 0.0, "agreement must be recorded");
        assert!(snap.mean_agreement <= 1.0);
        assert_eq!(snap.chip.synaptic_ops, snap.energy.synaptic_ops);
        assert_eq!(snap.chip.ticks, snap.ticks, "chip and serve tick counters agree");
        assert!(snap.chip.spikes_in > 0, "served frames inject spikes");
    }

    #[test]
    fn queue_stats_track_admission_load() {
        let rt = runtime(
            ServeConfig::builder(3)
                .workers(1)
                .spf(64)
                .queue_capacity(16)
                .batch_max(1)
                .build()
                .expect("cfg"),
        );
        let idle = rt.queue_stats();
        assert_eq!(idle.depth, 0);
        assert_eq!(idle.capacity, 16);
        assert_eq!(idle.in_flight, 0);
        assert_eq!(idle.fill(), 0.0);
        let handles: Vec<_> = (0..8)
            .map(|_| rt.submit(vec![1.0, 0.0]).expect("submit"))
            .collect();
        let loaded = rt.queue_stats();
        assert!(loaded.in_flight >= 1, "requests are outstanding: {loaded:?}");
        assert!(loaded.in_flight <= 8);
        assert!(loaded.fill() <= 1.0);
        for h in handles {
            h.wait().expect("serve");
        }
        let drained = rt.queue_stats();
        assert_eq!(drained.in_flight, 0, "all completed: {drained:?}");
        assert_eq!(drained.depth, 0);
        rt.shutdown();
    }

    #[test]
    fn kernel_batch_size_does_not_change_results() {
        // The batch-first contract: how frames are fused into lockstep
        // lanes is invisible in every response.
        let serve_all = |kernel_batch: usize| {
            let rt = runtime(
                ServeConfig::builder(13)
                    .replicas(2)
                    .workers(1)
                    .kernel_batch(kernel_batch)
                    .build()
                    .expect("cfg"),
            );
            let handles: Vec<_> = (0..24)
                .map(|i| {
                    let x = (i % 5) as f32 / 4.0;
                    rt.submit(vec![x, 1.0 - x]).expect("submit")
                })
                .collect();
            let results: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().expect("serve");
                    (r.seq, r.predicted, r.votes, r.replica_predictions, r.ticks)
                })
                .collect();
            rt.shutdown();
            results
        };
        let lone = serve_all(1);
        assert_eq!(lone, serve_all(8));
        assert_eq!(lone, serve_all(24));
    }

    /// Serve `n` requests and return the result tuples (fresh submissions
    /// starting at seq 0).
    fn serve_n(rt: &ServeRuntime, n: usize) -> Vec<(u64, usize, Vec<u64>, Vec<usize>)> {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let x = (i % 5) as f32 / 4.0;
                rt.submit(vec![x, 1.0 - x]).expect("submit")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let r = h.wait().expect("serve");
                (r.seq, r.predicted, r.votes, r.replica_predictions)
            })
            .collect()
    }

    #[test]
    fn apply_control_set_replicas_matches_fresh_runtime() {
        // Rescaling to r replicas, then serving, must be bit-identical to
        // a runtime *configured* at r replicas: the rebuild is seeded by
        // (seed, r) exactly as a fresh deployment is.
        let cfg = |replicas: usize| {
            ServeConfig::builder(21)
                .replicas(replicas)
                .workers(2)
                .build()
                .expect("cfg")
        };
        let scaled = runtime(cfg(2));
        scaled
            .apply_control(&ControlAction::SetReplicas(3))
            .expect("rescale");
        assert_eq!(scaled.replicas(), 3);
        let got = serve_n(&scaled, 24);
        assert_eq!(
            got.iter().map(|r| r.3.len()).max(),
            Some(3),
            "responses must come from 3 replicas"
        );
        scaled.shutdown();

        let fresh = runtime(cfg(3));
        let want = serve_n(&fresh, 24);
        fresh.shutdown();
        assert_eq!(got, want);
    }

    #[test]
    fn apply_control_kernel_batch_changes_width_not_results() {
        let mk = || {
            runtime(
                ServeConfig::builder(23)
                    .replicas(2)
                    .workers(1)
                    .kernel_batch(16)
                    .build()
                    .expect("cfg"),
            )
        };
        let rt = mk();
        rt.apply_control(&ControlAction::SetKernelBatch(3))
            .expect("set width");
        assert_eq!(rt.kernel_batch(), 3);
        let narrow = serve_n(&rt, 24);
        rt.shutdown();
        let rt = mk();
        let wide = serve_n(&rt, 24);
        rt.shutdown();
        assert_eq!(narrow, wide, "fusion width is invisible in results");
    }

    #[test]
    fn apply_control_rejects_zero_values() {
        let rt = runtime(ServeConfig::new(2));
        assert!(matches!(
            rt.apply_control(&ControlAction::SetKernelBatch(0)),
            Err(ServeError::BadConfig(msg)) if msg.contains("kernel_batch")
        ));
        assert!(matches!(
            rt.apply_control(&ControlAction::SetReplicas(0)),
            Err(ServeError::BadConfig(msg)) if msg.contains("replicas")
        ));
        assert_eq!(rt.rebuild_failures(), 0);
    }

    #[test]
    fn submit_class_selects_live_spf_and_rejects_unknown_classes() {
        use crate::control::{ControllerConfig, SpfClass};
        let mut controller = ControllerConfig {
            // Effectively never sampled: the test drives apply_control.
            sample_interval: Duration::from_secs(3600),
            ..ControllerConfig::default()
        };
        controller.spf_classes = vec![SpfClass::new(2, 32), SpfClass::new(4, 64)];
        let rt = runtime(
            ServeConfig::builder(7)
                .replicas(2)
                .workers(1)
                .spf(8)
                .controller(controller)
                .build()
                .expect("cfg"),
        );
        assert_eq!(rt.n_spf_classes(), 2);
        assert_eq!(rt.spf_per_class(), vec![8, 8]);
        // Unknown class is refused up front.
        assert_eq!(
            rt.submit(SubmitRequest::new(vec![1.0, 0.0]).class(2))
                .unwrap_err(),
            ServeError::UnknownClass { class: 2, classes: 2 }
        );
        // Default class rides at its configured spf.
        let r = rt.classify(vec![1.0, 0.0]).expect("serve");
        assert_eq!((r.class(), r.spf(), r.ticks), (0, 8, 8));
        // Move class 1's spf; class 0 is untouched.
        rt.apply_control(&ControlAction::SetSpf { class: 1, spf: 16 })
            .expect("set spf");
        assert_eq!(rt.spf_per_class(), vec![8, 16]);
        let r1 = rt
            .submit(SubmitRequest::new(vec![0.0, 1.0]).class(1))
            .expect("submit")
            .wait()
            .expect("serve");
        assert_eq!((r1.class(), r1.spf(), r1.ticks), (1, 16, 16));
        let r0 = rt.classify(vec![0.0, 1.0]).expect("serve");
        assert_eq!((r0.class(), r0.spf(), r0.ticks), (0, 8, 8));
        // Out-of-bounds values clamp into the class's tier; zero and
        // unknown classes are refused.
        rt.apply_control(&ControlAction::SetSpf { class: 0, spf: 1024 })
            .expect("clamp");
        assert_eq!(rt.spf_per_class()[0], 32, "clamped to spf_max");
        assert!(matches!(
            rt.apply_control(&ControlAction::SetSpf { class: 0, spf: 0 }),
            Err(ServeError::BadConfig(msg)) if msg.contains("spf")
        ));
        assert!(matches!(
            rt.apply_control(&ControlAction::SetSpf { class: 9, spf: 8 }),
            Err(ServeError::UnknownClass { class: 9, classes: 2 })
        ));
        rt.shutdown();
    }

    #[test]
    fn spf_changes_match_a_fresh_runtime_at_that_spf() {
        // The spf actuator's determinism contract: requests served after
        // SetSpf are bit-identical to a runtime *configured* at that spf.
        use crate::control::{ControllerConfig, SpfClass};
        let mk = |spf: usize, ctl: bool| {
            let mut b = ServeConfig::builder(31).replicas(2).workers(2).spf(spf);
            if ctl {
                let mut controller = ControllerConfig {
                    sample_interval: Duration::from_secs(3600),
                    ..ControllerConfig::default()
                };
                controller.spf_classes = vec![SpfClass::new(2, 64)];
                b = b.controller(controller);
            }
            runtime(b.build().expect("cfg"))
        };
        let adapted = mk(8, true);
        adapted
            .apply_control(&ControlAction::SetSpf { class: 0, spf: 4 })
            .expect("set spf");
        let got = serve_n(&adapted, 24);
        adapted.shutdown();
        let fresh = mk(4, false);
        let want = serve_n(&fresh, 24);
        fresh.shutdown();
        assert_eq!(got, want, "spf rides the frame, not the deployment");
    }

    #[test]
    fn packed_runtime_matches_solo_runtimes_bit_for_bit() {
        // Two different-shaped tenants on one packed chip, submissions
        // interleaved across models: every tenant's responses must equal
        // a solo runtime serving that spec alone at the same config.
        let cfg = || {
            ServeConfig::builder(17)
                .replicas(2)
                .workers(2)
                .batch_max(4)
                .build()
                .expect("cfg")
        };
        let specs = [xor_free_spec(), three_class_spec()];
        let packed = ServeRuntime::new_packed(&specs, cfg()).expect("packed runtime");
        assert!(packed.is_packed());
        assert_eq!(packed.models(), 2);
        assert_eq!(packed.model_n_inputs(0), Some(2));
        assert_eq!(packed.model_n_inputs(1), Some(3));
        assert_eq!(packed.model_n_classes(1), Some(3));
        let mut handles = Vec::new();
        for i in 0..12 {
            let x = (i % 5) as f32 / 4.0;
            handles.push((
                0usize,
                packed
                    .submit(SubmitRequest::new(vec![x, 1.0 - x]).model(0))
                    .expect("submit"),
            ));
            let y = (i % 3) as f32 / 2.0;
            handles.push((
                1usize,
                packed
                    .submit(SubmitRequest::new(vec![y, 1.0 - y, 0.5]).model(1))
                    .expect("submit"),
            ));
        }
        let mut got: Vec<Vec<_>> = vec![Vec::new(), Vec::new()];
        for (m, h) in handles {
            let r = h.wait().expect("serve");
            assert_eq!(r.model(), m, "response must name its tenant");
            let spf = r.spf();
            got[m].push((r.predicted, r.votes, r.replica_predictions, spf, r.ticks));
        }
        packed.shutdown();
        for (m, spec) in specs.iter().enumerate() {
            let rt = ServeRuntime::new(spec, cfg()).expect("solo");
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    if m == 0 {
                        let x = (i % 5) as f32 / 4.0;
                        rt.submit(vec![x, 1.0 - x]).expect("submit")
                    } else {
                        let y = (i % 3) as f32 / 2.0;
                        rt.submit(vec![y, 1.0 - y, 0.5]).expect("submit")
                    }
                })
                .collect();
            let want: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().expect("serve");
                    let spf = r.spf();
                    (r.predicted, r.votes, r.replica_predictions, spf, r.ticks)
                })
                .collect();
            rt.shutdown();
            assert_eq!(got[m], want, "tenant {m} diverges from its solo runtime");
        }
    }

    #[test]
    fn packed_runtime_validates_models_and_rejects_rescale() {
        let specs = [xor_free_spec(), three_class_spec()];
        let rt = ServeRuntime::new_packed(&specs, ServeConfig::new(3)).expect("packed");
        assert_eq!(
            rt.submit(SubmitRequest::new(vec![0.5, 0.5]).model(2))
                .unwrap_err(),
            ServeError::UnknownModel { model: 2, models: 2 }
        );
        assert_eq!(
            rt.submit(SubmitRequest::new(vec![0.5, 0.5]).model(1))
                .unwrap_err(),
            ServeError::BadInput { expected: 3, got: 2 },
            "width is checked against the named tenant"
        );
        assert!(matches!(
            rt.apply_control(&ControlAction::SetReplicas(2)),
            Err(ServeError::BadConfig(msg)) if msg.contains("packed")
        ));
        rt.apply_control(&ControlAction::SetKernelBatch(4))
            .expect("kernel-batch actuator still works packed");
        let r = rt
            .submit(SubmitRequest::new(vec![1.0, 0.0, 0.0]).model(1))
            .expect("submit")
            .wait()
            .expect("serve");
        assert_eq!((r.model(), r.predicted), (1, 0));
        let snap = rt.shutdown();
        assert_eq!(snap.completed, 1);
        assert!(
            ServeRuntime::new_packed(&[], ServeConfig::new(3)).is_err(),
            "empty spec list is refused"
        );
    }

    #[test]
    fn solo_runtime_serves_model_zero_only() {
        let rt = runtime(ServeConfig::new(4));
        assert!(!rt.is_packed());
        assert_eq!(rt.models(), 1);
        assert_eq!(
            rt.submit(SubmitRequest::new(vec![0.5, 0.5]).model(1))
                .unwrap_err(),
            ServeError::UnknownModel { model: 1, models: 1 }
        );
        // model(0) is the plain submit path.
        let r = rt
            .submit(SubmitRequest::new(vec![1.0, 0.0]).model(0))
            .expect("submit")
            .wait()
            .expect("serve");
        assert_eq!((r.model(), r.predicted), (0, 0));
        rt.shutdown();
    }

    #[test]
    fn telemetry_sink_receives_final_snapshot_with_serve_counters() {
        let sink = Arc::new(MemorySink::new());
        let cfg = ServeConfig::builder(9)
            .replicas(2)
            .workers(2)
            .telemetry(TelemetryConfig::default())
            .build()
            .expect("cfg");
        let rt = ServeRuntime::new_with_sink(
            &xor_free_spec(),
            cfg,
            Arc::clone(&sink) as Arc<dyn MetricsSink>,
        )
        .expect("runtime");
        for i in 0..12 {
            let x = (i % 3) as f32 / 2.0;
            rt.classify(vec![x, 1.0 - x]).expect("serve");
        }
        rt.shutdown();
        assert!(!sink.is_empty(), "shutdown must flush a final snapshot");
        assert_eq!(sink.last_counter("serve.completed"), Some(12));
        assert_eq!(sink.last_counter("serve.submitted"), Some(12));
        // The per-model dimension is always exported; on a solo runtime
        // model 0 mirrors the global counters.
        assert_eq!(sink.last_counter("serve.model.0.completed"), Some(12));
        assert_eq!(sink.last_counter("serve.model.0.submitted"), Some(12));
        assert!(sink.last_counter("chip.synaptic_ops").unwrap_or(0) > 0);
        let last = sink.snapshots().pop().expect("snapshot");
        assert_eq!(last.gauges.get("serve.replicas"), Some(&2.0));
        // Sparsity observability: the compiled path serves these frames,
        // so density is a real fraction and skip counters are live.
        let density = *last.gauges.get("serve.spike_density").expect("density");
        assert!(density > 0.0 && density <= 1.0, "density {density}");
        assert!(last.counters.contains_key("serve.rows_skipped"));
        assert!(last.counters.get("chip.axon_visits").copied().unwrap_or(0) > 0);
        assert_eq!(last.gauges.get("serve.spf"), Some(&8.0), "default spf");
        assert!(
            last.stages.contains_key("kernel") && last.stages["kernel"].count > 0,
            "worker spans must reach the exported snapshot: {:?}",
            last.stages
        );
        // The wire line round-trips through the strict parser.
        let line = last.to_json_line();
        assert_eq!(Snapshot::parse_json_line(&line).expect("valid line"), last);
    }

    /// A two-tier table: a 1-replica fast tier and a 4-replica certain
    /// tier, no escalation unless the caller adds it.
    fn tier_cfg(seed: u64) -> crate::config::ServeConfigBuilder {
        ServeConfig::builder(seed)
            .replicas(2)
            .workers(2)
            .tier(QualityTier::new("fast", 1, 2))
            .tier(QualityTier::new("certain", 4, 8))
    }

    #[test]
    fn tier_routing_serves_named_operating_points() {
        let rt = runtime(tier_cfg(41).build().expect("cfg"));
        assert_eq!(rt.tier_names(), vec!["fast", "certain"]);
        // Unknown tiers are refused up front, naming the live table.
        assert_eq!(
            rt.submit(SubmitRequest::new(vec![1.0, 0.0]).quality("turbo"))
                .unwrap_err(),
            ServeError::UnknownQuality {
                quality: "turbo".into(),
                tiers: vec!["fast".into(), "certain".into()],
            }
        );
        // Tier-less requests keep the default replica set and live spf.
        let r = rt.classify(vec![1.0, 0.0]).expect("serve");
        assert_eq!(r.tier(), None);
        assert!(!r.escalated());
        assert_eq!(r.replica_predictions.len(), 2);
        // Each tier serves at its own (replicas, spf) point and reports
        // its name and a confidence in [0, 1].
        let fast = rt
            .classify(SubmitRequest::new(vec![1.0, 0.0]).quality("fast"))
            .expect("serve");
        assert_eq!(fast.tier(), Some("fast"));
        assert_eq!((fast.replica_predictions.len(), fast.spf()), (1, 2));
        assert!(!fast.escalated());
        assert!((0.0..=1.0).contains(&fast.confidence()));
        let certain = rt
            .classify(SubmitRequest::new(vec![1.0, 0.0]).quality("certain"))
            .expect("serve");
        assert_eq!(certain.tier(), Some("certain"));
        assert_eq!((certain.replica_predictions.len(), certain.spf()), (4, 8));
        let snap = rt.shutdown();
        assert_eq!(snap.completed, 3);
    }

    #[test]
    fn tier_results_are_bit_identical_to_a_runtime_configured_at_that_point() {
        // A tiered request is served exactly as a runtime *configured* at
        // the tier's (replicas, spf) would serve the same seq.
        let rt = runtime(tier_cfg(43).workers(1).build().expect("cfg"));
        let got: Vec<_> = (0..12)
            .map(|i| {
                let x = (i % 5) as f32 / 4.0;
                rt.classify(SubmitRequest::new(vec![x, 1.0 - x]).quality("certain"))
                    .map(|r| (r.seq, r.predicted, r.votes, r.replica_predictions))
                    .expect("serve")
            })
            .collect();
        rt.shutdown();
        let fresh = runtime(
            ServeConfig::builder(43)
                .replicas(4)
                .workers(1)
                .spf(8)
                .build()
                .expect("cfg"),
        );
        let want: Vec<_> = (0..12)
            .map(|i| {
                let x = (i % 5) as f32 / 4.0;
                fresh
                    .classify(vec![x, 1.0 - x])
                    .map(|r| (r.seq, r.predicted, r.votes, r.replica_predictions))
                    .expect("serve")
            })
            .collect();
        fresh.shutdown();
        assert_eq!(got, want);
    }

    #[test]
    fn packed_runtimes_reject_tier_tables() {
        let specs = [xor_free_spec(), three_class_spec()];
        let err = ServeRuntime::new_packed(&specs, tier_cfg(3).build().expect("cfg"))
            .expect_err("tiers are a solo-runtime feature");
        assert!(matches!(
            err,
            ServeError::BadConfig(msg) if msg.contains("packed")
        ));
    }

    #[test]
    fn resample_zero_restores_the_plain_build() {
        // After a Resample{sample} excursion, Resample{0} must put the
        // runtime back on the original deployment: requests then served
        // are bit-identical to a never-resampled runtime at the same
        // seqs (frame seeds ride the global seq, so the comparison
        // runtime serves three batches too).
        let mk = || {
            runtime(
                ServeConfig::builder(47)
                    .replicas(2)
                    .workers(1)
                    .build()
                    .expect("cfg"),
            )
        };
        let rt = mk();
        let before = serve_n(&rt, 12);
        rt.resample(5).expect("resample");
        serve_n(&rt, 12);
        rt.resample(0).expect("restore");
        let after = serve_n(&rt, 12);
        rt.shutdown();
        let fresh = mk();
        let want_before = serve_n(&fresh, 12);
        serve_n(&fresh, 12);
        let want_after = serve_n(&fresh, 12);
        fresh.shutdown();
        assert_eq!(before, want_before);
        assert_eq!(after, want_after, "sample 0 is the plain build");
        assert!(matches!(
            ServeRuntime::new_packed(
                &[xor_free_spec()],
                ServeConfig::new(3)
            )
            .expect("packed")
            .resample(1),
            Err(ServeError::BadConfig(msg)) if msg.contains("packed")
        ));
    }

    #[test]
    fn resample_tier_swaps_one_tier_only() {
        let rt = runtime(tier_cfg(53).workers(1).build().expect("cfg"));
        assert!(matches!(
            rt.resample_tier("turbo", 1),
            Err(ServeError::UnknownQuality { .. })
        ));
        let serve_tiered = |rt: &ServeRuntime, quality: &str, n: usize| -> Vec<_> {
            (0..n)
                .map(|i| {
                    let x = (i % 5) as f32 / 4.0;
                    rt.classify(SubmitRequest::new(vec![x, 1.0 - x]).quality(quality))
                        .map(|r| (r.predicted, r.votes, r.replica_predictions))
                        .expect("serve")
                })
                .collect()
        };
        let fast_before = serve_tiered(&rt, "fast", 8);
        let certain_before = serve_tiered(&rt, "certain", 8);
        rt.resample_tier("certain", 7).expect("resample certain");
        // Note: seqs advanced, so re-serve the *same seq-relative* stream
        // on a fresh runtime to compare: instead just assert the fast
        // tier still matches a freshly built tiered runtime's fast tier.
        let fast_after = serve_tiered(&rt, "fast", 8);
        rt.shutdown();
        // Fast tier frames depend only on (seed, seq); seq moved between
        // the two fast batches, so compare against fresh runtimes at the
        // matching seq offsets rather than each other.
        let fresh = runtime(tier_cfg(53).workers(1).build().expect("cfg"));
        let fresh_fast = serve_tiered(&fresh, "fast", 8);
        let fresh_certain = serve_tiered(&fresh, "certain", 8);
        let fresh_fast_after = serve_tiered(&fresh, "fast", 8);
        fresh.shutdown();
        assert_eq!(fast_before, fresh_fast);
        assert_eq!(certain_before, fresh_certain);
        assert_eq!(
            fast_after, fresh_fast_after,
            "resampling the certain tier must not move the fast tier"
        );
    }
}

//! The serving runtime: worker pool, submission path, voting, shutdown.
//!
//! # Determinism contract
//!
//! Every worker owns a *clone* of one prototype [`Deployment`], built
//! (and Bernoulli-sampled) exactly once from `(spec, cfg.seed)`. A
//! request's spike trains are seeded purely by `(cfg.seed, seq)` — the
//! same derivation the offline evaluator uses per frame — so the result
//! of serving request `seq` is a pure function of the config and the
//! submission order, never of worker count, queue timing, or OS
//! scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use tn_chip::nscs::{Deployment, FrameInput, NetworkDeploySpec};
use tn_chip::prng::splitmix64;

use crate::config::{Backpressure, ServeConfig};
use crate::error::ServeError;
use crate::handle::{pair, Completer, RequestHandle, Response};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};

/// One queued inference request.
#[derive(Debug)]
struct Job {
    seq: u64,
    inputs: Vec<f32>,
    submitted: Instant,
    completer: Completer,
}

/// A persistent multi-threaded inference runtime over deployed chip
/// replicas.
///
/// See the crate docs for the architecture; in short: bounded MPMC
/// queue → worker pool (one cloned deployment each) → per-request
/// replica voting → completion handles.
#[derive(Debug)]
pub struct ServeRuntime {
    queue: Arc<BoundedQueue<Job>>,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicU64,
    started: Instant,
    cfg: ServeConfig,
    n_inputs: usize,
    n_classes: usize,
    /// Physical cores of one worker's chip (for the energy model).
    cores: usize,
}

impl ServeRuntime {
    /// Deploy `spec` and start the worker pool.
    ///
    /// Building samples the replica crossbars once; each worker then
    /// clones the prototype so all workers hold bit-identical replicas.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] for inconsistent configs,
    /// [`ServeError::Deploy`] if the spec cannot be placed on a chip.
    pub fn new(spec: &NetworkDeploySpec, cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let proto =
            Deployment::build_with_mode(spec, cfg.replicas, cfg.seed, cfg.connectivity)?;
        let n_inputs = proto.n_inputs();
        let n_classes = proto.n_classes();
        let cores = proto.core_count();
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(Metrics::new(cfg.workers));
        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let dep = proto.clone();
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let cfg = cfg.clone();
            let handle = std::thread::Builder::new()
                .name(format!("tn-serve-worker-{w}"))
                .spawn(move || worker_loop(w, dep, &cfg, &queue, &metrics))
                .expect("spawn serve worker");
            workers.push(handle);
        }
        Ok(Self {
            queue,
            metrics,
            workers,
            next_seq: AtomicU64::new(0),
            started: Instant::now(),
            cfg,
            n_inputs,
            n_classes,
            cores,
        })
    }

    /// Input channels each request must provide.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Classes voted on per request.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Submit one inference request; returns an awaitable handle.
    ///
    /// With [`Backpressure::Block`] this blocks while the queue is full;
    /// with [`Backpressure::Reject`] it fails fast instead.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] / [`ServeError::InputOutOfRange`] on
    /// malformed inputs, [`ServeError::QueueFull`] under rejecting
    /// backpressure, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, inputs: Vec<f32>) -> Result<RequestHandle, ServeError> {
        if inputs.len() != self.n_inputs {
            return Err(ServeError::BadInput {
                expected: self.n_inputs,
                got: inputs.len(),
            });
        }
        if let Some(channel) = inputs.iter().position(|v| !(0.0..=1.0).contains(v)) {
            return Err(ServeError::InputOutOfRange {
                channel,
                value: inputs[channel],
            });
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (handle, completer) = pair(seq);
        let job = Job {
            seq,
            inputs,
            submitted: Instant::now(),
            completer,
        };
        let outcome = match self.cfg.backpressure {
            Backpressure::Block => self.queue.push(job),
            Backpressure::Reject => self.queue.try_push(job),
        };
        match outcome {
            Ok(()) => {
                self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(handle)
            }
            Err(PushError::Full(_)) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit and block for the result (convenience wrapper).
    ///
    /// # Blocking contract
    ///
    /// Blocks the calling thread until a worker serves the request — under
    /// [`Backpressure::Block`] possibly *twice*: first for a queue slot,
    /// then for completion. It never blocks forever: if the runtime shuts
    /// down (or is dropped) before the request is served, the call returns
    /// [`ServeError::ShuttingDown`]. Callers that need a deadline should
    /// use [`ServeRuntime::submit`] with
    /// [`RequestHandle::wait_timeout`](crate::RequestHandle::wait_timeout).
    ///
    /// # Errors
    ///
    /// Same as [`ServeRuntime::submit`], plus any worker-side failure.
    pub fn classify(&self, inputs: Vec<f32>) -> Result<Response, ServeError> {
        self.submit(inputs)?.wait()
    }

    /// Snapshot the runtime's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.queue.len(), self.started.elapsed(), self.cores)
    }

    /// Graceful shutdown: refuse new submissions, drain every queued
    /// request, join the workers, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close_and_join();
        self.metrics()
    }

    fn close_and_join(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // A panicked worker already poisoned its requests' handles
            // (dropped completers → ShuttingDown); propagate for visibility.
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Per-worker serving loop: drain micro-batches until closed-and-empty,
/// slicing each drained batch into kernel-level lockstep lane batches of up
/// to `cfg.kernel_batch` frames served by one `Deployment::run_frames`
/// call. Each frame's seed is a pure function of `(cfg.seed, seq)`, so how
/// frames land in batches never affects results.
fn worker_loop(
    worker: usize,
    mut dep: Deployment,
    cfg: &ServeConfig,
    queue: &BoundedQueue<Job>,
    metrics: &Metrics,
) {
    let n_classes = dep.n_classes();
    // Frames run on the deployment's compiled fast path (built once in the
    // prototype and shared by every worker clone); `core_threads` optionally
    // fans each tick's cores across threads inside this worker.
    dep.set_parallelism(cfg.core_threads);
    let mut batch: Vec<Job> = Vec::with_capacity(cfg.batch_max);
    let mut last_synops = dep.synaptic_ops();
    while queue.pop_batch(cfg.batch_max, &mut batch) {
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        while !batch.is_empty() {
            let take = cfg.kernel_batch.max(1).min(batch.len());
            let chunk: Vec<Job> = batch.drain(..take).collect();
            // Same per-frame derivation as the offline evaluator: the
            // request's sequence number plays the role of the frame index.
            let frames: Vec<FrameInput> = chunk
                .iter()
                .map(|job| {
                    let frame_seed = splitmix64(cfg.seed ^ job.seq.wrapping_mul(0x9E37_79B9));
                    FrameInput::new(&job.inputs, cfg.spf, frame_seed)
                })
                .collect();
            let results = dep.run_frames(&frames);
            metrics.kernel_batches.fetch_add(1, Ordering::Relaxed);
            drop(frames);
            for (job, votes) in chunk.into_iter().zip(results) {
                let response = tally(
                    job.seq,
                    worker,
                    votes.ticks,
                    n_classes,
                    &votes.counts,
                    job.submitted,
                );
                metrics.record_completion(worker, votes.ticks, response.latency);
                job.completer.complete(Ok(response));
            }
        }
        // Fold this batch's synaptic work into the global energy counters.
        let synops = dep.synaptic_ops();
        metrics
            .synaptic_ops
            .fetch_add(synops - last_synops, Ordering::Relaxed);
        last_synops = synops;
    }
}

/// Pool replica votes into a [`Response`]. Ties break toward the lowest
/// class index, which keeps tallies deterministic.
fn tally(
    seq: u64,
    worker: usize,
    ticks: u64,
    n_classes: usize,
    votes: &[u64],
    submitted: Instant,
) -> Response {
    let replicas = votes.len() / n_classes;
    let argmax = |lane: &[u64]| {
        lane.iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map_or(0, |(i, _)| i)
    };
    let mut pooled = vec![0u64; n_classes];
    let mut replica_predictions = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let lane = &votes[r * n_classes..(r + 1) * n_classes];
        replica_predictions.push(argmax(lane));
        for (p, &v) in pooled.iter_mut().zip(lane) {
            *p += v;
        }
    }
    let predicted = argmax(&pooled);
    let agreeing = replica_predictions.iter().filter(|&&p| p == predicted).count();
    Response {
        seq,
        predicted,
        votes: pooled,
        replica_predictions,
        agreement: agreeing as f32 / replicas.max(1) as f32,
        worker,
        ticks,
        latency: submitted.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_chip::nscs::{CoreDeploySpec, InputSource};

    /// 2-input, 2-class, single-core spec with deterministic ±1 weights:
    /// input channel k drives class k.
    fn xor_free_spec() -> NetworkDeploySpec {
        NetworkDeploySpec {
            cores: vec![CoreDeploySpec {
                layer: 0,
                weights: vec![1.0, -1.0, -1.0, 1.0],
                n_axons: 2,
                n_neurons: 2,
                biases: vec![-0.5, -0.5],
                axon_sources: vec![InputSource::External(0), InputSource::External(1)],
            }],
            n_inputs: 2,
            n_classes: 2,
            output_taps: vec![(0, 0, 0), (0, 1, 1)],
        }
    }

    fn runtime(cfg: ServeConfig) -> ServeRuntime {
        ServeRuntime::new(&xor_free_spec(), cfg).expect("runtime")
    }

    #[test]
    fn classifies_by_hot_channel() {
        let rt = runtime(
            ServeConfig::builder(5)
                .replicas(2)
                .workers(2)
                .build()
                .expect("cfg"),
        );
        let r0 = rt.classify(vec![1.0, 0.0]).expect("serve");
        assert_eq!(r0.predicted, 0, "votes {:?}", r0.votes);
        let r1 = rt.classify(vec![0.0, 1.0]).expect("serve");
        assert_eq!(r1.predicted, 1, "votes {:?}", r1.votes);
        assert_eq!(r1.replica_predictions.len(), 2);
        assert!(r1.agreement > 0.0);
        assert_eq!(r1.ticks, 8, "spf 8, depth 1");
    }

    #[test]
    fn rejects_malformed_inputs() {
        let rt = runtime(ServeConfig::new(5));
        assert_eq!(
            rt.submit(vec![0.5]).unwrap_err(),
            ServeError::BadInput {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            rt.submit(vec![0.5, 1.5]).unwrap_err(),
            ServeError::InputOutOfRange {
                channel: 1,
                value: 1.5
            }
        );
    }

    #[test]
    fn results_are_a_function_of_seq_not_worker_count() {
        let serve_all = |workers: usize| {
            let rt = runtime(
                ServeConfig::builder(11)
                    .replicas(3)
                    .workers(workers)
                    .batch_max(4)
                    .build()
                    .expect("cfg"),
            );
            let handles: Vec<_> = (0..24)
                .map(|i| {
                    let x = (i % 5) as f32 / 4.0;
                    rt.submit(vec![x, 1.0 - x]).expect("submit")
                })
                .collect();
            let results: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().expect("serve");
                    (r.seq, r.predicted, r.votes, r.replica_predictions)
                })
                .collect();
            rt.shutdown();
            results
        };
        assert_eq!(serve_all(1), serve_all(4));
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        // One slow-ish worker, many queued requests: shutdown must serve
        // them all, not drop them.
        let rt = runtime(
            ServeConfig::builder(3)
                .workers(1)
                .spf(32)
                .queue_capacity(64)
                .build()
                .expect("cfg"),
        );
        let handles: Vec<_> = (0..32)
            .map(|_| rt.submit(vec![1.0, 0.0]).expect("submit"))
            .collect();
        let snap = rt.shutdown();
        assert_eq!(snap.completed, 32);
        assert_eq!(snap.queue_depth, 0);
        for h in handles {
            assert!(h.wait().is_ok(), "drained request must have completed");
        }
    }

    #[test]
    fn reject_backpressure_sheds_load() {
        // Capacity-1 queue with a slow worker: a burst must trip QueueFull.
        let rt = runtime(
            ServeConfig::builder(3)
                .workers(1)
                .spf(256)
                .queue_capacity(1)
                .batch_max(1)
                .backpressure(Backpressure::Reject)
                .build()
                .expect("cfg"),
        );
        let mut rejected = 0;
        let mut handles = Vec::new();
        for _ in 0..64 {
            match rt.submit(vec![1.0, 0.0]) {
                Ok(h) => handles.push(h),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected > 0, "burst should overflow a capacity-1 queue");
        let snap = rt.metrics();
        assert_eq!(snap.rejected, rejected);
        for h in handles {
            h.wait().expect("accepted requests still complete");
        }
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let rt = runtime(ServeConfig::new(2));
        let snap = {
            let queue = Arc::clone(&rt.queue);
            queue.close();
            rt.metrics()
        };
        assert_eq!(rt.submit(vec![0.5, 0.5]).unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(snap.rejected, 0, "shutdown refusals are not load shedding");
    }

    #[test]
    fn metrics_account_every_request() {
        let rt = runtime(
            ServeConfig::builder(8)
                .workers(2)
                .replicas(2)
                .build()
                .expect("cfg"),
        );
        for i in 0..20 {
            let x = (i % 3) as f32 / 2.0;
            rt.classify(vec![x, 1.0 - x]).expect("serve");
        }
        let snap = rt.shutdown();
        assert_eq!(snap.submitted, 20);
        assert_eq!(snap.completed, 20);
        assert_eq!(snap.per_worker_frames.iter().sum::<u64>(), 20);
        assert_eq!(snap.ticks, 20 * 8);
        assert!(snap.p50_latency > std::time::Duration::ZERO);
        assert!(snap.energy.synaptic_ops > 0);
        assert!(snap.joules_per_frame() > 0.0);
        assert!(snap.kernel_batches > 0, "batched path must be exercised");
        assert!(snap.mean_kernel_batch_size() >= 1.0);
    }

    #[test]
    fn kernel_batch_size_does_not_change_results() {
        // The batch-first contract: how frames are fused into lockstep
        // lanes is invisible in every response.
        let serve_all = |kernel_batch: usize| {
            let rt = runtime(
                ServeConfig::builder(13)
                    .replicas(2)
                    .workers(1)
                    .kernel_batch(kernel_batch)
                    .build()
                    .expect("cfg"),
            );
            let handles: Vec<_> = (0..24)
                .map(|i| {
                    let x = (i % 5) as f32 / 4.0;
                    rt.submit(vec![x, 1.0 - x]).expect("submit")
                })
                .collect();
            let results: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().expect("serve");
                    (r.seq, r.predicted, r.votes, r.replica_predictions, r.ticks)
                })
                .collect();
            rt.shutdown();
            results
        };
        let lone = serve_all(1);
        assert_eq!(lone, serve_all(8));
        assert_eq!(lone, serve_all(24));
    }
}

//! The adaptive control loop: pure decision math over telemetry samples.
//!
//! The paper's co-optimization is a three-way trade between accuracy,
//! core occupation, and throughput. At serve time the same trade is live:
//! the replica vote-agreement metric estimates the per-copy Bernoulli
//! variance (Eq. 15) that duplication exists to average away, and queue
//! depth measures how far demand outruns the kernel. This module closes
//! the loop:
//!
//! * **`kernel_batch` from queue depth** — a deep queue means requests are
//!   waiting for crossbar walks, which lane batching amortizes; a drained
//!   queue means fusion is adding latency for nothing. The controller
//!   doubles the fusion width when queue fill crosses
//!   [`ControllerConfig::queue_high`] and halves it below
//!   [`ControllerConfig::queue_low`] (multiplicative in both directions —
//!   the actuator is free and invisible in results, so fast convergence
//!   beats caution). Bounds: `1 ..= kernel_batch_max`.
//! * **replicas from agreement** — replicas voting unanimously are wasted
//!   cores (scale down); replicas disagreeing mean the pooled vote is
//!   still noisy (scale up). Hysteresis is double-ended: a dead band
//!   between [`ControllerConfig::agreement_low`] and
//!   [`ControllerConfig::agreement_high`] where nothing happens, a streak
//!   requirement ([`ControllerConfig::scale_streak`] consecutive
//!   out-of-band samples), and a post-change cooldown
//!   ([`ControllerConfig::cooldown`]) so one decision's effect is observed
//!   before the next. Bounds: `min_replicas ..= max_replicas`.
//! * **spf per request class from agreement** — ticks-per-frame is the
//!   paper's performance axis (its 6.5× speedup knob). When a request
//!   class's windowed agreement saturates above
//!   [`ControllerConfig::agreement_high`], the stochastic vote has
//!   converged and the class is over-sampling: spf halves toward
//!   [`SpfClass::spf_min`]. When agreement falls below
//!   [`ControllerConfig::agreement_low`] the vote is under-sampled and spf
//!   doubles toward [`SpfClass::spf_max`]. Each class carries its own
//!   streak counters and cooldown clock (the *same* hysteresis machinery
//!   replicas use), so a bursty class cannot steal another's evidence.
//!   The actuator rides [`tn_chip::nscs::FrameInput::spf`] — no
//!   deployment rebuild — so the epoch-swapped replica-rescale path stays
//!   bit-identical to a fresh runtime.
//!
//! # Determinism
//!
//! [`Controller::observe`] is a pure function of the controller's state
//! and the [`ControlSample`] — time arrives as `t_ns` *inside the sample*
//! (stamped by a [`tn_telemetry::Clock`]), never read from `Instant`. The
//! unit tests script a clock and replay load patterns; the same schedule
//! always yields the same actions.

use std::time::Duration;

use crate::error::ServeError;

/// Per-request-class bounds for the spf (ticks-per-frame) actuator.
///
/// A *request class* is a caller-chosen service tier: class `c` of a
/// submission ([`crate::ServeRuntime::submit_class`]) selects
/// `spf_classes[c]`. The controller moves the class's live spf
/// multiplicatively inside `[spf_min, spf_max]`; frames always run at the
/// spf their class held at serve time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpfClass {
    /// Floor for the class's ticks-per-frame (≥ 1). The throughput end:
    /// the controller halves spf toward this while agreement saturates.
    pub spf_min: usize,
    /// Ceiling for the class's ticks-per-frame. The accuracy end: the
    /// controller doubles spf toward this while agreement is poor.
    pub spf_max: usize,
}

impl SpfClass {
    /// A class bounded to `spf_min ..= spf_max`.
    pub fn new(spf_min: usize, spf_max: usize) -> Self {
        Self { spf_min, spf_max }
    }

    /// Clamp an spf value into this class's bounds.
    pub fn clamp(&self, spf: usize) -> usize {
        spf.clamp(self.spf_min, self.spf_max)
    }
}

/// Tuning for the adaptive control loop, validated by
/// [`crate::ServeConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// How often the runtime samples metrics and consults the controller.
    pub sample_interval: Duration,
    /// Queue fill fraction (depth/capacity) at or above which the kernel
    /// fusion width doubles.
    pub queue_high: f64,
    /// Queue fill fraction at or below which the fusion width halves.
    pub queue_low: f64,
    /// Mean replica agreement below which replicas scale **up** (the
    /// pooled vote is still noisy).
    pub agreement_low: f32,
    /// Mean replica agreement above which replicas scale **down**
    /// (duplication is buying nothing).
    pub agreement_high: f32,
    /// Replica floor (≥ 1).
    pub min_replicas: usize,
    /// Replica ceiling.
    pub max_replicas: usize,
    /// Consecutive out-of-band samples required before a replica change.
    pub scale_streak: usize,
    /// Minimum time between replica changes (lets the previous decision's
    /// effect show up in the agreement window before acting again).
    pub cooldown: Duration,
    /// Request classes whose spf the controller adapts (empty = the spf
    /// actuator is off and every request runs at the configured
    /// [`crate::ServeConfig::spf`]). Class `c` of a submission maps to
    /// `spf_classes[c]`; each class gets independent streak + cooldown
    /// state reusing the same `agreement_low`/`agreement_high` band,
    /// `scale_streak`, and `cooldown` the replica actuator uses.
    pub spf_classes: Vec<SpfClass>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            sample_interval: Duration::from_millis(100),
            queue_high: 0.5,
            queue_low: 0.125,
            agreement_low: 0.80,
            agreement_high: 0.97,
            min_replicas: 1,
            max_replicas: 8,
            scale_streak: 3,
            cooldown: Duration::from_secs(2),
            spf_classes: Vec::new(),
        }
    }
}

impl ControllerConfig {
    /// Check internal consistency (called from the serve-config builder).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] naming the offending field pair.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.sample_interval.is_zero() {
            return Err(ServeError::BadConfig(
                "controller sample_interval must be > 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.queue_low)
            || !(0.0..=1.0).contains(&self.queue_high)
            || self.queue_low >= self.queue_high
        {
            return Err(ServeError::BadConfig(format!(
                "controller queue watermarks must satisfy 0 <= queue_low < queue_high <= 1, got {} / {}",
                self.queue_low, self.queue_high
            )));
        }
        if !(0.0..=1.0).contains(&self.agreement_low)
            || !(0.0..=1.0).contains(&self.agreement_high)
            || self.agreement_low >= self.agreement_high
        {
            return Err(ServeError::BadConfig(format!(
                "controller agreement band must satisfy 0 <= agreement_low < agreement_high <= 1, got {} / {}",
                self.agreement_low, self.agreement_high
            )));
        }
        if self.min_replicas == 0 {
            return Err(ServeError::BadConfig(
                "controller min_replicas must be >= 1".into(),
            ));
        }
        if self.min_replicas > self.max_replicas {
            return Err(ServeError::BadConfig(format!(
                "controller min_replicas ({}) must not exceed max_replicas ({})",
                self.min_replicas, self.max_replicas
            )));
        }
        if self.scale_streak == 0 {
            return Err(ServeError::BadConfig(
                "controller scale_streak must be >= 1".into(),
            ));
        }
        for (c, class) in self.spf_classes.iter().enumerate() {
            if class.spf_min == 0 {
                return Err(ServeError::BadConfig(format!(
                    "controller spf class {c}: spf_min must be >= 1"
                )));
            }
            if class.spf_min > class.spf_max {
                return Err(ServeError::BadConfig(format!(
                    "controller spf class {c}: spf_min ({}) must not exceed spf_max ({})",
                    class.spf_min, class.spf_max
                )));
            }
        }
        Ok(())
    }
}

/// One observation window handed to [`Controller::observe`].
///
/// Everything the control math consumes arrives here — including time —
/// so decisions are replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSample {
    /// Sample time in clock nanoseconds ([`tn_telemetry::Clock`]).
    pub t_ns: u64,
    /// Submission-queue depth at sample time.
    pub queue_depth: usize,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// Fusion width currently in force.
    pub kernel_batch: usize,
    /// Replica count currently in force.
    pub replicas: usize,
    /// Mean replica vote agreement over the window since the previous
    /// sample; `None` when no requests completed in the window (the
    /// controller then leaves replicas alone — no evidence, no action).
    pub mean_agreement: Option<f32>,
    /// Live spf per request class (`[spf_classes.len()]`; empty when the
    /// spf actuator is off).
    pub spf: Vec<usize>,
    /// Windowed mean agreement per request class, aligned with `spf`;
    /// `None` entries mean no completions for that class in the window.
    pub class_agreement: Vec<Option<f32>>,
}

/// A decision the runtime should apply (see
/// [`crate::ServeRuntime::apply_control`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlAction {
    /// Set the kernel lane-fusion width (clamped to ≥ 1 by the actuator;
    /// never changes any result, only throughput/latency).
    SetKernelBatch(usize),
    /// Rebuild worker deployments at this replica count (changes the
    /// accuracy/occupation point, deterministically: the replica sample
    /// at count `r` is a pure function of `(spec, seed, r)`).
    SetReplicas(usize),
    /// Set one request class's live ticks-per-frame. Applied to frames
    /// via [`tn_chip::nscs::FrameInput::spf`] at serve time — no
    /// deployment rebuild, so the replica-rescale epoch swap is
    /// untouched. A frame's result is still a pure function of
    /// `(seed, seq, spf)`; what the actuator makes time-dependent is
    /// *which* spf an in-flight request is served at.
    SetSpf {
        /// Request class index (into [`ControllerConfig::spf_classes`]).
        class: usize,
        /// New ticks-per-frame, inside the class's bounds.
        spf: usize,
    },
    /// Rebuild the default replica set as ensemble sample `sample`
    /// (fresh Bernoulli synapse draws from the same trained
    /// probabilities; `0` restores the original build). Applied through
    /// the same epoch-swap machinery as [`ControlAction::SetReplicas`],
    /// so in-flight work is unaffected. The current controller never
    /// emits this; it exists for external operators
    /// ([`crate::ServeRuntime::apply_control`] /
    /// [`crate::ServeRuntime::resample`]).
    Resample {
        /// Ensemble sample index (see
        /// [`tn_chip::nscs::Deployment::build_with_sample`]).
        sample: u64,
    },
}

/// The adaptive controller: a small deterministic state machine.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControllerConfig,
    /// Ceiling for the fusion width (the configured `kernel_batch`).
    kernel_batch_max: usize,
    /// Consecutive samples with agreement below the band.
    low_streak: usize,
    /// Consecutive samples with agreement above the band.
    high_streak: usize,
    /// Time of the last replica change, if any.
    last_scale_ns: Option<u64>,
    /// Per spf class: consecutive samples with agreement below the band.
    spf_low_streak: Vec<usize>,
    /// Per spf class: consecutive samples with agreement above the band.
    spf_high_streak: Vec<usize>,
    /// Per spf class: time of the last spf change, if any.
    last_spf_ns: Vec<Option<u64>>,
}

impl Controller {
    /// A controller enforcing `cfg`, with fusion width bounded by
    /// `kernel_batch_max` (clamped to ≥ 1).
    pub fn new(cfg: ControllerConfig, kernel_batch_max: usize) -> Self {
        let n_classes = cfg.spf_classes.len();
        Self {
            cfg,
            kernel_batch_max: kernel_batch_max.max(1),
            low_streak: 0,
            high_streak: 0,
            last_scale_ns: None,
            spf_low_streak: vec![0; n_classes],
            spf_high_streak: vec![0; n_classes],
            last_spf_ns: vec![None; n_classes],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Consume one sample, emit zero or more actions. Pure: no clocks, no
    /// I/O — everything observed arrives in `sample`.
    pub fn observe(&mut self, sample: &ControlSample) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        self.observe_queue(sample, &mut actions);
        self.observe_agreement(sample, &mut actions);
        self.observe_spf(sample, &mut actions);
        actions
    }

    /// kernel_batch ∈ [1, max] follows queue fill multiplicatively.
    fn observe_queue(&self, sample: &ControlSample, actions: &mut Vec<ControlAction>) {
        let fill = sample.queue_depth as f64 / sample.queue_capacity.max(1) as f64;
        let current = sample.kernel_batch.max(1);
        if fill >= self.cfg.queue_high && current < self.kernel_batch_max {
            actions.push(ControlAction::SetKernelBatch(
                (current * 2).min(self.kernel_batch_max),
            ));
        } else if fill <= self.cfg.queue_low && current > 1 {
            actions.push(ControlAction::SetKernelBatch(current / 2));
        }
    }

    /// Replicas ∈ [min, max] follow agreement with dead band, streak, and
    /// cooldown hysteresis.
    fn observe_agreement(&mut self, sample: &ControlSample, actions: &mut Vec<ControlAction>) {
        let Some(agreement) = sample.mean_agreement else {
            // No completions this window: no evidence either way. Streaks
            // reset so stale momentum cannot trigger a scale later.
            self.low_streak = 0;
            self.high_streak = 0;
            return;
        };
        let cooldown_ns = u64::try_from(self.cfg.cooldown.as_nanos()).unwrap_or(u64::MAX);
        let cooled = self
            .last_scale_ns
            .is_none_or(|t0| sample.t_ns.saturating_sub(t0) >= cooldown_ns);
        if !cooled {
            // Inside the cooldown the previous change's effect is still
            // arriving in the agreement window; evidence gathered now is
            // stale, so the streak rebuilds from zero afterwards.
            self.low_streak = 0;
            self.high_streak = 0;
            return;
        }
        if agreement < self.cfg.agreement_low {
            self.low_streak += 1;
            self.high_streak = 0;
        } else if agreement > self.cfg.agreement_high {
            self.high_streak += 1;
            self.low_streak = 0;
        } else {
            // Inside the dead band: the whole point of hysteresis.
            self.low_streak = 0;
            self.high_streak = 0;
            return;
        }
        if self.low_streak >= self.cfg.scale_streak && sample.replicas < self.cfg.max_replicas {
            actions.push(ControlAction::SetReplicas(sample.replicas + 1));
            self.after_scale(sample.t_ns);
        } else if self.high_streak >= self.cfg.scale_streak
            && sample.replicas > self.cfg.min_replicas
        {
            actions.push(ControlAction::SetReplicas(sample.replicas - 1));
            self.after_scale(sample.t_ns);
        }
    }

    fn after_scale(&mut self, t_ns: u64) {
        self.low_streak = 0;
        self.high_streak = 0;
        self.last_scale_ns = Some(t_ns);
    }

    /// spf per class ∈ [spf_min, spf_max] follows the class's windowed
    /// agreement with the same dead band, streak, and cooldown hysteresis
    /// the replica actuator uses — but tracked per class, so evidence for
    /// one class never moves another's knob. Direction: saturated
    /// agreement means the stochastic vote converged with samples to
    /// spare, so spf *halves* (throughput, the paper's performance axis);
    /// poor agreement means under-sampling, so spf *doubles*.
    fn observe_spf(&mut self, sample: &ControlSample, actions: &mut Vec<ControlAction>) {
        let cooldown_ns = u64::try_from(self.cfg.cooldown.as_nanos()).unwrap_or(u64::MAX);
        for (class, bounds) in self.cfg.spf_classes.clone().iter().enumerate() {
            let agreement = sample.class_agreement.get(class).copied().flatten();
            let Some(agreement) = agreement else {
                // No completions for this class in the window: no
                // evidence, streaks reset (no stale momentum).
                self.spf_low_streak[class] = 0;
                self.spf_high_streak[class] = 0;
                continue;
            };
            let cooled = self.last_spf_ns[class]
                .is_none_or(|t0| sample.t_ns.saturating_sub(t0) >= cooldown_ns);
            if !cooled {
                self.spf_low_streak[class] = 0;
                self.spf_high_streak[class] = 0;
                continue;
            }
            if agreement < self.cfg.agreement_low {
                self.spf_low_streak[class] += 1;
                self.spf_high_streak[class] = 0;
            } else if agreement > self.cfg.agreement_high {
                self.spf_high_streak[class] += 1;
                self.spf_low_streak[class] = 0;
            } else {
                self.spf_low_streak[class] = 0;
                self.spf_high_streak[class] = 0;
                continue;
            }
            let current = sample
                .spf
                .get(class)
                .copied()
                .unwrap_or(bounds.spf_max)
                .max(1);
            if self.spf_high_streak[class] >= self.cfg.scale_streak && current > bounds.spf_min
            {
                actions.push(ControlAction::SetSpf {
                    class,
                    spf: (current / 2).max(bounds.spf_min),
                });
                self.after_spf(class, sample.t_ns);
            } else if self.spf_low_streak[class] >= self.cfg.scale_streak
                && current < bounds.spf_max
            {
                actions.push(ControlAction::SetSpf {
                    class,
                    spf: (current * 2).min(bounds.spf_max),
                });
                self.after_spf(class, sample.t_ns);
            }
        }
    }

    fn after_spf(&mut self, class: usize, t_ns: u64) {
        self.spf_low_streak[class] = 0;
        self.spf_high_streak[class] = 0;
        self.last_spf_ns[class] = Some(t_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_telemetry::{Clock, ManualClock};

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            sample_interval: Duration::from_millis(10),
            queue_high: 0.5,
            queue_low: 0.125,
            agreement_low: 0.8,
            agreement_high: 0.95,
            min_replicas: 1,
            max_replicas: 4,
            scale_streak: 3,
            cooldown: Duration::from_millis(100),
            spf_classes: Vec::new(),
        }
    }

    /// Drive one scripted sample: advance the clock by one interval, then
    /// observe the given load.
    fn step(
        ctl: &mut Controller,
        clock: &ManualClock,
        depth: usize,
        kb: usize,
        replicas: usize,
        agreement: Option<f32>,
    ) -> Vec<ControlAction> {
        clock.advance(ctl.config().sample_interval);
        ctl.observe(&ControlSample {
            t_ns: clock.now_ns(),
            queue_depth: depth,
            queue_capacity: 64,
            kernel_batch: kb,
            replicas,
            mean_agreement: agreement,
            spf: Vec::new(),
            class_agreement: Vec::new(),
        })
    }

    /// Drive one scripted sample against the spf actuator only: mid-band
    /// queue fill and replica agreement so the other two axes stay quiet.
    fn step_spf(
        ctl: &mut Controller,
        clock: &ManualClock,
        spf: Vec<usize>,
        class_agreement: Vec<Option<f32>>,
    ) -> Vec<ControlAction> {
        clock.advance(ctl.config().sample_interval);
        ctl.observe(&ControlSample {
            t_ns: clock.now_ns(),
            queue_depth: 16,
            queue_capacity: 64,
            kernel_batch: 4,
            replicas: 2,
            mean_agreement: Some(0.9),
            spf,
            class_agreement,
        })
    }

    #[test]
    fn kernel_batch_rises_with_queue_depth_and_falls_when_idle() {
        let clock = ManualClock::new();
        let mut ctl = Controller::new(cfg(), 16);
        // Saturated queue: 1 → 2 → 4 → 8 → 16, then pinned at the max.
        let mut kb = 1;
        let mut widths = vec![kb];
        for _ in 0..6 {
            match step(&mut ctl, &clock, 64, kb, 1, Some(0.9)).first() {
                Some(&ControlAction::SetKernelBatch(next)) => kb = next,
                Some(other) => panic!("unexpected {other:?}"),
                None => {}
            }
            widths.push(kb);
        }
        assert_eq!(widths, vec![1, 2, 4, 8, 16, 16, 16]);
        // Queue drains: multiplicative decrease back to 1.
        let mut widths = vec![kb];
        for _ in 0..5 {
            match step(&mut ctl, &clock, 0, kb, 1, Some(0.9)).first() {
                Some(&ControlAction::SetKernelBatch(next)) => kb = next,
                Some(other) => panic!("unexpected {other:?}"),
                None => {}
            }
            widths.push(kb);
        }
        assert_eq!(widths, vec![16, 8, 4, 2, 1, 1]);
    }

    #[test]
    fn mid_band_queue_fill_leaves_kernel_batch_alone() {
        let clock = ManualClock::new();
        let mut ctl = Controller::new(cfg(), 16);
        // 16/64 = 0.25 sits between the 0.125 and 0.5 watermarks.
        for _ in 0..10 {
            assert_eq!(step(&mut ctl, &clock, 16, 4, 1, Some(0.9)), vec![]);
        }
    }

    #[test]
    fn low_agreement_scales_replicas_up_after_streak() {
        let clock = ManualClock::new();
        let mut ctl = Controller::new(cfg(), 8);
        // Two low samples: not yet (streak is 3).
        assert_eq!(step(&mut ctl, &clock, 16, 4, 2, Some(0.5)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 2, Some(0.5)), vec![]);
        // Third consecutive low sample trips the scale-up.
        assert_eq!(
            step(&mut ctl, &clock, 16, 4, 2, Some(0.5)),
            vec![ControlAction::SetReplicas(3)]
        );
        // Immediately after: cooldown holds even if agreement stays low.
        for _ in 0..5 {
            assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(0.5)), vec![]);
        }
        // Past the cooldown the streak must rebuild from zero, then fires.
        clock.advance(Duration::from_millis(100));
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(0.5)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(0.5)), vec![]);
        assert_eq!(
            step(&mut ctl, &clock, 16, 4, 3, Some(0.5)),
            vec![ControlAction::SetReplicas(4)]
        );
        // At max_replicas, low agreement can no longer scale up.
        clock.advance(Duration::from_millis(100));
        for _ in 0..6 {
            assert_eq!(step(&mut ctl, &clock, 16, 4, 4, Some(0.5)), vec![]);
        }
    }

    #[test]
    fn unanimous_agreement_scales_replicas_down_with_hysteresis() {
        let clock = ManualClock::new();
        let mut ctl = Controller::new(cfg(), 8);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(1.0)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(1.0)), vec![]);
        assert_eq!(
            step(&mut ctl, &clock, 16, 4, 3, Some(1.0)),
            vec![ControlAction::SetReplicas(2)]
        );
        // min_replicas is a floor.
        clock.advance(Duration::from_millis(100));
        for _ in 0..3 {
            step(&mut ctl, &clock, 16, 4, 1, Some(1.0));
        }
        clock.advance(Duration::from_millis(100));
        for _ in 0..6 {
            assert_eq!(step(&mut ctl, &clock, 16, 4, 1, Some(1.0)), vec![]);
        }
    }

    #[test]
    fn dead_band_and_gaps_reset_the_streak() {
        let clock = ManualClock::new();
        let mut ctl = Controller::new(cfg(), 8);
        // low, low, in-band, low, low, low → fires only after the post-gap
        // streak completes: hysteresis, not a leaky counter.
        assert_eq!(step(&mut ctl, &clock, 16, 4, 2, Some(0.5)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 2, Some(0.5)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 2, Some(0.9)), vec![], "dead band resets");
        assert_eq!(step(&mut ctl, &clock, 16, 4, 2, Some(0.5)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 2, Some(0.5)), vec![]);
        assert_eq!(
            step(&mut ctl, &clock, 16, 4, 2, Some(0.5)),
            vec![ControlAction::SetReplicas(3)]
        );
        // An idle window (no completions) also resets: no stale momentum.
        clock.advance(Duration::from_millis(100));
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(0.5)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(0.5)), vec![]);
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, None), vec![], "idle resets");
        assert_eq!(step(&mut ctl, &clock, 16, 4, 3, Some(0.5)), vec![]);
    }

    #[test]
    fn identical_schedules_yield_identical_decisions() {
        // Determinism: replay the same scripted load twice.
        let run = || {
            let clock = ManualClock::new();
            let mut ctl = Controller::new(cfg(), 32);
            let mut log = Vec::new();
            let mut kb = 1;
            let mut replicas = 1;
            for i in 0..50u64 {
                let depth = if i % 7 < 4 { 60 } else { 2 };
                let agreement = if i < 25 { Some(0.5) } else { Some(1.0) };
                for action in step(&mut ctl, &clock, depth, kb, replicas, agreement) {
                    match action {
                        ControlAction::SetKernelBatch(v) => kb = v,
                        ControlAction::SetReplicas(v) => replicas = v,
                        ControlAction::SetSpf { .. } => {
                            unreachable!("no spf classes configured")
                        }
                        ControlAction::Resample { .. } => {
                            unreachable!("the controller never emits Resample")
                        }
                    }
                    log.push((i, action));
                }
            }
            (log, kb, replicas)
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.0.is_empty(), "the schedule must exercise both axes");
    }

    #[test]
    fn spf_adapts_per_class_with_hysteresis_and_bounds() {
        let clock = ManualClock::new();
        let mut c = cfg();
        // Class 0: premium (tight floor). Class 1: bulk (wide range).
        c.spf_classes = vec![SpfClass::new(4, 16), SpfClass::new(2, 64)];
        let mut ctl = Controller::new(c, 8);

        // Saturated agreement on class 0 only: after the 3-sample streak
        // its spf halves 16 → 8; class 1 (no evidence) is untouched.
        let spfs = || vec![16usize, 8];
        assert_eq!(step_spf(&mut ctl, &clock, spfs(), vec![Some(1.0), None]), vec![]);
        assert_eq!(step_spf(&mut ctl, &clock, spfs(), vec![Some(1.0), None]), vec![]);
        assert_eq!(
            step_spf(&mut ctl, &clock, spfs(), vec![Some(1.0), None]),
            vec![ControlAction::SetSpf { class: 0, spf: 8 }]
        );
        // Cooldown: continued saturation does nothing until it elapses.
        for _ in 0..5 {
            assert_eq!(
                step_spf(&mut ctl, &clock, vec![8, 8], vec![Some(1.0), None]),
                vec![]
            );
        }
        // Past cooldown the streak rebuilds, then 8 → 4 lands on the
        // floor; further saturation can never go below spf_min.
        clock.advance(Duration::from_millis(100));
        for _ in 0..2 {
            assert_eq!(
                step_spf(&mut ctl, &clock, vec![8, 8], vec![Some(1.0), None]),
                vec![]
            );
        }
        assert_eq!(
            step_spf(&mut ctl, &clock, vec![8, 8], vec![Some(1.0), None]),
            vec![ControlAction::SetSpf { class: 0, spf: 4 }]
        );
        clock.advance(Duration::from_millis(100));
        for _ in 0..6 {
            assert_eq!(
                step_spf(&mut ctl, &clock, vec![4, 8], vec![Some(1.0), None]),
                vec![]
            );
        }

        // Poor agreement on class 1 doubles it toward (and never past)
        // spf_max, while class 0 sits in the dead band untouched.
        for _ in 0..2 {
            assert_eq!(
                step_spf(&mut ctl, &clock, vec![4, 32], vec![Some(0.9), Some(0.3)]),
                vec![]
            );
        }
        assert_eq!(
            step_spf(&mut ctl, &clock, vec![4, 32], vec![Some(0.9), Some(0.3)]),
            vec![ControlAction::SetSpf { class: 1, spf: 64 }]
        );
        clock.advance(Duration::from_millis(100));
        for _ in 0..6 {
            assert_eq!(
                step_spf(&mut ctl, &clock, vec![4, 64], vec![Some(0.9), Some(0.3)]),
                vec![],
                "spf_max is a ceiling"
            );
        }
    }

    #[test]
    fn spf_streaks_reset_on_gaps_and_dead_band() {
        let clock = ManualClock::new();
        let mut c = cfg();
        c.spf_classes = vec![SpfClass::new(2, 32)];
        let mut ctl = Controller::new(c, 8);
        // high, high, gap (no completions), high, high, high → only the
        // post-gap streak fires.
        assert_eq!(step_spf(&mut ctl, &clock, vec![32], vec![Some(1.0)]), vec![]);
        assert_eq!(step_spf(&mut ctl, &clock, vec![32], vec![Some(1.0)]), vec![]);
        assert_eq!(step_spf(&mut ctl, &clock, vec![32], vec![None]), vec![], "gap resets");
        assert_eq!(step_spf(&mut ctl, &clock, vec![32], vec![Some(1.0)]), vec![]);
        assert_eq!(step_spf(&mut ctl, &clock, vec![32], vec![Some(1.0)]), vec![]);
        assert_eq!(
            step_spf(&mut ctl, &clock, vec![32], vec![Some(1.0)]),
            vec![ControlAction::SetSpf { class: 0, spf: 16 }]
        );
        // Dead-band samples also reset the streak.
        clock.advance(Duration::from_millis(100));
        assert_eq!(step_spf(&mut ctl, &clock, vec![16], vec![Some(1.0)]), vec![]);
        assert_eq!(step_spf(&mut ctl, &clock, vec![16], vec![Some(1.0)]), vec![]);
        assert_eq!(
            step_spf(&mut ctl, &clock, vec![16], vec![Some(0.9)]),
            vec![],
            "dead band resets"
        );
        assert_eq!(step_spf(&mut ctl, &clock, vec![16], vec![Some(1.0)]), vec![]);
    }

    #[test]
    fn validation_rejects_inverted_bands() {
        let check = |mutate: fn(&mut ControllerConfig)| {
            let mut c = cfg();
            mutate(&mut c);
            c.validate().unwrap_err()
        };
        assert!(matches!(
            check(|c| c.queue_low = 0.9),
            ServeError::BadConfig(msg) if msg.contains("queue")
        ));
        assert!(matches!(
            check(|c| c.agreement_high = 0.1),
            ServeError::BadConfig(msg) if msg.contains("agreement")
        ));
        assert!(matches!(
            check(|c| c.min_replicas = 0),
            ServeError::BadConfig(msg) if msg.contains("min_replicas")
        ));
        assert!(matches!(
            check(|c| { c.min_replicas = 5; c.max_replicas = 2; }),
            ServeError::BadConfig(msg) if msg.contains("max_replicas")
        ));
        assert!(matches!(
            check(|c| c.scale_streak = 0),
            ServeError::BadConfig(msg) if msg.contains("scale_streak")
        ));
        assert!(matches!(
            check(|c| c.sample_interval = Duration::ZERO),
            ServeError::BadConfig(msg) if msg.contains("sample_interval")
        ));
        assert!(matches!(
            check(|c| c.spf_classes = vec![SpfClass::new(0, 8)]),
            ServeError::BadConfig(msg) if msg.contains("spf_min")
        ));
        assert!(matches!(
            check(|c| c.spf_classes = vec![SpfClass::new(16, 8)]),
            ServeError::BadConfig(msg) if msg.contains("spf_max")
        ));
        cfg().validate().expect("the test config itself is valid");
    }
}

//! Per-request completion handles.
//!
//! Submission returns a [`RequestHandle`]; the worker that serves the
//! request fulfils the paired [`Completer`]. One-shot semantics are
//! enforced by construction: the completer is moved into exactly one
//! worker job and consumed by [`Completer::complete`], and the handle's
//! [`RequestHandle::wait`] consumes the handle.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::error::ServeError;

/// How a request was actually served: routing (class/model/tier), the
/// effective spf, and the uncertainty verdict (confidence/escalated).
///
/// `#[non_exhaustive]` with accessor methods, so adding future routing or
/// quality facts is not a breaking change (the `Response` field sprawl
/// this replaces made every new fact one). Construct with
/// [`ServedAs::new`] plus the `with_*` chainers (test/tooling use; the
/// runtime fills it in internally).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServedAs {
    pub(crate) class: usize,
    pub(crate) model: usize,
    pub(crate) spf: usize,
    pub(crate) tier: Option<String>,
    pub(crate) confidence: f32,
    pub(crate) escalated: bool,
}

impl ServedAs {
    /// Routing facts for a request served with no quality tier: raw
    /// vote-margin `confidence` is filled in by the runtime, `tier` is
    /// `None`, `escalated` is `false`.
    pub fn new(class: usize, model: usize, spf: usize) -> Self {
        Self {
            class,
            model,
            spf,
            tier: None,
            confidence: 0.0,
            escalated: false,
        }
    }

    /// Attach the answering tier's name.
    #[must_use]
    pub fn with_tier(mut self, tier: impl Into<String>) -> Self {
        self.tier = Some(tier.into());
        self
    }

    /// Set the calibrated confidence.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f32) -> Self {
        self.confidence = confidence;
        self
    }

    /// Mark the response as having taken the escalate path.
    #[must_use]
    pub fn with_escalated(mut self, escalated: bool) -> Self {
        self.escalated = escalated;
        self
    }

    /// Request class the submission named (0 by default; drives the
    /// controller's per-class spf actuator).
    pub fn class(&self) -> usize {
        self.class
    }

    /// Tenant model that served the request (0 on single-model runtimes).
    pub fn model(&self) -> usize {
        self.model
    }

    /// Ticks-per-frame the request was actually served at (the answering
    /// tier's spf on tiered requests; otherwise the class's live spf at
    /// serve time).
    pub fn spf(&self) -> usize {
        self.spf
    }

    /// Name of the quality tier that produced the answer (`None` for
    /// tier-less requests; on escalation, the *escalation target*).
    pub fn tier(&self) -> Option<&str> {
        self.tier.as_deref()
    }

    /// Calibrated confidence in `predicted`: the vote margin mapped
    /// through the tier's [`crate::CalibrationMap`] (raw margin for
    /// tier-less requests or before calibration).
    pub fn confidence(&self) -> f32 {
        self.confidence
    }

    /// Whether a low-confidence fast-tier answer was transparently
    /// re-run on its escalation tier.
    pub fn escalated(&self) -> bool {
        self.escalated
    }
}

/// The outcome of one served inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Monotonic submission sequence number (also the determinism key:
    /// the frame seed is a pure function of it).
    pub seq: u64,
    /// Predicted class: argmax of the replica-pooled votes.
    pub predicted: usize,
    /// Per-class votes summed across replicas (`[n_classes]`).
    pub votes: Vec<u64>,
    /// Each replica's individual argmax (`[replicas]`).
    pub replica_predictions: Vec<usize>,
    /// Fraction of replicas whose individual argmax matches `predicted`.
    pub agreement: f32,
    /// How the request was routed and judged (class, model, spf, tier,
    /// confidence, escalation). See [`ServedAs`].
    pub served: ServedAs,
    /// Index of the worker thread that served the request.
    pub worker: usize,
    /// Chip ticks spent on this frame (spf + pipeline depth − 1; on
    /// escalation, the fast and certain passes summed).
    pub ticks: u64,
    /// Wall-clock latency from submission to completion.
    pub latency: Duration,
}

impl Response {
    /// Request class the submission named. Delegates to
    /// [`ServedAs::class`].
    pub fn class(&self) -> usize {
        self.served.class()
    }

    /// Tenant model that served the request. Delegates to
    /// [`ServedAs::model`].
    pub fn model(&self) -> usize {
        self.served.model()
    }

    /// Effective ticks-per-frame. Delegates to [`ServedAs::spf`].
    pub fn spf(&self) -> usize {
        self.served.spf()
    }

    /// Answering quality tier, if any. Delegates to [`ServedAs::tier`].
    pub fn tier(&self) -> Option<&str> {
        self.served.tier()
    }

    /// Calibrated confidence in `predicted`. Delegates to
    /// [`ServedAs::confidence`].
    pub fn confidence(&self) -> f32 {
        self.served.confidence()
    }

    /// Whether the escalate path ran. Delegates to
    /// [`ServedAs::escalated`].
    pub fn escalated(&self) -> bool {
        self.served.escalated()
    }
}

#[derive(Debug)]
struct Cell {
    slot: Mutex<Option<Result<Response, ServeError>>>,
    done: Condvar,
}

/// Awaitable handle for one submitted request.
#[derive(Debug)]
pub struct RequestHandle {
    cell: Arc<Cell>,
    seq: u64,
}

/// Completion token paired with one [`RequestHandle`].
///
/// Inside the runtime a worker consumes it with [`Completer::complete`].
/// It is public because serving *front-end tiers* (the `tn-fleet`
/// router) mint their own pairs via [`RequestHandle::channel`]: they
/// hand the handle to the caller, dispatch the request to a remote
/// shard, and complete the pair when the shard's answer frame arrives —
/// so remote and in-process submissions are awaited identically.
#[derive(Debug)]
pub struct Completer {
    cell: Arc<Cell>,
}

/// Create a connected handle/completer pair for submission `seq`.
pub(crate) fn pair(seq: u64) -> (RequestHandle, Completer) {
    let cell = Arc::new(Cell {
        slot: Mutex::new(None),
        done: Condvar::new(),
    });
    (
        RequestHandle {
            cell: Arc::clone(&cell),
            seq,
        },
        Completer { cell },
    )
}

impl RequestHandle {
    /// Create a connected handle/completer pair for submission `seq`,
    /// outside any runtime.
    ///
    /// The waiting semantics are identical to a runtime-issued handle:
    /// dropping the [`Completer`] unfulfilled wakes the waiter with
    /// [`ServeError::ShuttingDown`], so a crashed dispatcher never
    /// leaves a caller hanging.
    pub fn channel(seq: u64) -> (RequestHandle, Completer) {
        pair(seq)
    }

    /// The request's submission sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Block until the request completes.
    ///
    /// # Errors
    ///
    /// Propagates the worker-side [`ServeError`], or
    /// [`ServeError::ShuttingDown`] if the runtime went away before a
    /// worker served the request (the handle never hangs on a dropped
    /// runtime).
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut slot = self.cell.slot.lock().expect("handle lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            // Belt-and-braces: a dropping completer stores ShuttingDown
            // itself, but if this handle is the last cell owner nothing can
            // ever fill the slot — bail out instead of blocking forever.
            if Arc::strong_count(&self.cell) == 1 {
                return Err(ServeError::ShuttingDown);
            }
            slot = self.cell.done.wait(slot).expect("handle lock");
        }
    }

    /// Block until the request completes or `timeout` elapses.
    ///
    /// Does not consume the handle: after a [`ServeError::WaitTimeout`] the
    /// request is still in flight and the caller may wait again (or poll
    /// with [`RequestHandle::try_take`]). Like `try_take`, the result is
    /// handed out exactly once.
    ///
    /// # Errors
    ///
    /// Propagates the worker-side [`ServeError`];
    /// [`ServeError::WaitTimeout`] when the deadline passes first;
    /// [`ServeError::ShuttingDown`] when the runtime went away before
    /// serving the request.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Response, ServeError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.cell.slot.lock().expect("handle lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            if Arc::strong_count(&self.cell) == 1 {
                return Err(ServeError::ShuttingDown);
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
            else {
                return Err(ServeError::WaitTimeout);
            };
            (slot, _) = self
                .cell
                .done
                .wait_timeout(slot, remaining)
                .expect("handle lock");
        }
    }

    /// Non-blocking poll; returns the result once, `None` while pending.
    pub fn try_take(&self) -> Option<Result<Response, ServeError>> {
        self.cell.slot.lock().expect("handle lock").take()
    }
}

impl Completer {
    /// Fulfil the paired handle (idempotence is unreachable by
    /// construction; a second call would simply overwrite).
    pub fn complete(self, result: Result<Response, ServeError>) {
        *self.cell.slot.lock().expect("handle lock") = Some(result);
        self.cell.done.notify_all();
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        // A completer dropped unfulfilled means the runtime is going away
        // without serving this request; store ShuttingDown so the waiter
        // gets a definite answer instead of hanging. `complete` also lands
        // here (it consumed self), so leave a fulfilled cell untouched.
        let mut slot = self.cell.slot.lock().expect("handle lock");
        if slot.is_none() {
            *slot = Some(Err(ServeError::ShuttingDown));
        }
        drop(slot);
        self.cell.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_response(seq: u64) -> Response {
        Response {
            seq,
            predicted: 1,
            votes: vec![0, 5],
            replica_predictions: vec![1, 1],
            agreement: 1.0,
            served: ServedAs::new(0, 0, 8).with_confidence(1.0),
            worker: 0,
            ticks: 8,
            latency: Duration::from_micros(10),
        }
    }

    #[test]
    fn served_as_accessors_round_trip() {
        let served = ServedAs::new(1, 2, 4)
            .with_tier("fast")
            .with_confidence(0.75)
            .with_escalated(true);
        assert_eq!(served.class(), 1);
        assert_eq!(served.model(), 2);
        assert_eq!(served.spf(), 4);
        assert_eq!(served.tier(), Some("fast"));
        assert!((served.confidence() - 0.75).abs() < 1e-6);
        assert!(served.escalated());
        let r = Response {
            served,
            ..dummy_response(0)
        };
        assert_eq!((r.class(), r.model(), r.spf()), (1, 2, 4));
        assert_eq!(r.tier(), Some("fast"));
        assert!(r.escalated());
    }

    #[test]
    fn wait_returns_completed_result() {
        let (handle, completer) = pair(3);
        assert_eq!(handle.seq(), 3);
        completer.complete(Ok(dummy_response(3)));
        let r = handle.wait().expect("completed");
        assert_eq!(r.seq, 3);
        assert_eq!(r.predicted, 1);
    }

    #[test]
    fn wait_blocks_until_cross_thread_completion() {
        let (handle, completer) = pair(0);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            completer.complete(Ok(dummy_response(0)));
        });
        assert!(handle.wait().is_ok());
        t.join().expect("join");
    }

    #[test]
    fn dropped_completer_yields_shutting_down() {
        let (handle, completer) = pair(9);
        drop(completer);
        assert_eq!(handle.wait(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let (handle, completer) = pair(4);
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(5)),
            Err(ServeError::WaitTimeout),
            "nothing completed yet"
        );
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            completer.complete(Ok(dummy_response(4)));
        });
        // The handle survives a timeout; a later wait picks up the result.
        let r = handle.wait_timeout(Duration::from_secs(5)).expect("done");
        assert_eq!(r.seq, 4);
        t.join().expect("join");
    }

    #[test]
    fn wait_timeout_sees_shutdown_immediately() {
        let (handle, completer) = pair(2);
        drop(completer);
        assert_eq!(
            handle.wait_timeout(Duration::from_secs(60)),
            Err(ServeError::ShuttingDown),
            "dropped runtime must not consume the full timeout"
        );
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let (handle, completer) = pair(1);
        assert!(handle.try_take().is_none());
        completer.complete(Err(ServeError::QueueFull));
        assert_eq!(handle.try_take(), Some(Err(ServeError::QueueFull)));
        assert!(handle.try_take().is_none(), "result is taken once");
    }
}

//! In-memory duplex byte pipes: a `TcpStream` stand-in for
//! deterministic single-process fleet tests.
//!
//! [`duplex`] returns two connected [`PipeStream`] endpoints; bytes
//! written to one are read from the other, in order, with blocking
//! reads and bounded-buffer blocking writes — the same observable
//! semantics as a loopback TCP connection, minus the kernel, ports, and
//! nondeterministic timing. Cloning an endpoint shares it (like
//! `TcpStream::try_clone`), so one thread can read while another
//! writes. Dropping *all* clones of an endpoint closes it: the peer's
//! reads drain whatever is buffered and then return `Ok(0)` (EOF), and
//! the peer's writes fail with [`std::io::ErrorKind::BrokenPipe`] —
//! which is exactly the hook a fleet test needs to simulate connection
//! loss ([`PipeStream::shutdown`] does the same without dropping).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// One direction of a duplex pipe: a bounded byte buffer plus
/// open/closed state for each end.
#[derive(Debug)]
struct Channel {
    state: Mutex<ChannelState>,
    /// Signalled on every state change (bytes in, bytes out, close).
    cond: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct ChannelState {
    buf: VecDeque<u8>,
    /// Writer end gone: reads drain then EOF.
    write_closed: bool,
    /// Reader end gone: writes fail immediately (nobody will drain).
    read_closed: bool,
}

impl Channel {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(ChannelState {
                buf: VecDeque::new(),
                write_closed: false,
                read_closed: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.state.lock().expect("pipe lock");
        loop {
            if !state.buf.is_empty() {
                let n = out.len().min(state.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("non-empty");
                }
                self.cond.notify_all();
                return Ok(n);
            }
            if state.write_closed {
                return Ok(0); // clean EOF
            }
            if state.read_closed {
                // Our own end was shut down while we were blocked.
                return Ok(0);
            }
            state = self.cond.wait(state).expect("pipe lock");
        }
    }

    fn write(&self, mut data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let total = data.len();
        let mut state = self.state.lock().expect("pipe lock");
        while !data.is_empty() {
            if state.read_closed || state.write_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe peer closed",
                ));
            }
            let room = self.capacity.saturating_sub(state.buf.len());
            if room == 0 {
                state = self.cond.wait(state).expect("pipe lock");
                continue;
            }
            let n = room.min(data.len());
            state.buf.extend(&data[..n]);
            data = &data[n..];
            self.cond.notify_all();
        }
        Ok(total)
    }

    fn close_write(&self) {
        let mut state = self.state.lock().expect("pipe lock");
        state.write_closed = true;
        self.cond.notify_all();
    }

    fn close_read(&self) {
        let mut state = self.state.lock().expect("pipe lock");
        state.read_closed = true;
        self.cond.notify_all();
    }
}

/// Shared ownership of one endpoint's liveness: when the last clone
/// drops, close our write direction (peer sees EOF) and our read
/// direction (peer's writes break).
#[derive(Debug)]
struct EndpointGuard {
    /// Channel this endpoint writes into.
    tx: Arc<Channel>,
    /// Channel this endpoint reads from.
    rx: Arc<Channel>,
}

impl Drop for EndpointGuard {
    fn drop(&mut self) {
        self.tx.close_write();
        self.rx.close_read();
    }
}

/// One endpoint of an in-memory duplex pipe (see [`duplex`]).
///
/// Implements [`Read`] + [`Write`] with TCP-like semantics and is
/// `Clone` (clones share the endpoint, like `TcpStream::try_clone`).
#[derive(Debug, Clone)]
pub struct PipeStream {
    guard: Arc<EndpointGuard>,
}

impl PipeStream {
    /// Hard-close both directions of this endpoint immediately, even if
    /// clones remain: the peer's pending and future reads see EOF, its
    /// writes fail with `BrokenPipe`, and so do ours. This is the
    /// "yank the network cable" primitive for connection-loss tests.
    pub fn shutdown(&self) {
        self.guard.tx.close_write();
        self.guard.tx.close_read();
        self.guard.rx.close_read();
        self.guard.rx.close_write();
    }
}

impl Read for PipeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.guard.rx.read(buf)
    }
}

impl Write for PipeStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.guard.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Create a connected pair of in-memory duplex streams with
/// `capacity` bytes of buffering per direction.
///
/// ```
/// use std::io::{Read, Write};
/// let (mut a, mut b) = tn_serve::pipe::duplex(64);
/// a.write_all(b"ping").unwrap();
/// let mut buf = [0u8; 4];
/// b.read_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"ping");
/// drop(a); // close: b's next read is EOF
/// assert_eq!(b.read(&mut buf).unwrap(), 0);
/// ```
pub fn duplex(capacity: usize) -> (PipeStream, PipeStream) {
    let ab = Arc::new(Channel::new(capacity.max(1)));
    let ba = Arc::new(Channel::new(capacity.max(1)));
    let a = PipeStream {
        guard: Arc::new(EndpointGuard {
            tx: Arc::clone(&ab),
            rx: Arc::clone(&ba),
        }),
    };
    let b = PipeStream {
        guard: Arc::new(EndpointGuard { tx: ba, rx: ab }),
    };
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_flow_both_ways_in_order() {
        let (mut a, mut b) = duplex(8);
        a.write_all(b"hello").expect("write");
        b.write_all(b"world").expect("write");
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hello");
        a.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn bounded_buffer_blocks_until_drained() {
        let (mut a, mut b) = duplex(4);
        let writer = std::thread::spawn(move || {
            a.write_all(&[7u8; 64]).expect("write 64 through a 4-byte pipe");
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 16];
        while got.len() < 64 {
            let n = b.read(&mut buf).expect("read");
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().expect("join");
        assert!(got.iter().all(|&x| x == 7));
    }

    #[test]
    fn drop_yields_eof_then_broken_pipe() {
        let (a, mut b) = duplex(8);
        {
            let mut a2 = a.clone();
            a2.write_all(b"xy").expect("write");
        } // dropping a clone does not close — `a` still lives
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).expect("drain"), 2, "buffered bytes drain");
        assert_eq!(b.read(&mut buf).expect("eof"), 0, "then EOF");
        let err = b.write_all(b"z").expect_err("peer gone");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn shutdown_unblocks_a_parked_reader() {
        let (a, mut b) = duplex(8);
        let a2 = a.clone();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            b.read(&mut buf).expect("read returns on shutdown")
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        a2.shutdown();
        assert_eq!(reader.join().expect("join"), 0, "EOF, not a hang");
    }
}

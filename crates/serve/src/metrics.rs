//! Lock-free runtime statistics.
//!
//! Counters are plain relaxed atomics (they feed monitoring, not control
//! flow). Latency quantiles come from a fixed log-linear histogram: exact
//! 1 ns buckets below 16 ns, then 16 sub-buckets per power of two, giving
//! ≤ 1/16 (6.25%) quantile error over 1 ns .. ~18 s with zero allocation
//! and no locks on the hot path. (The previous power-of-two buckets had
//! ≤ 2× error, which collapsed p50 and p99 onto the same value whenever a
//! workload's latencies fit inside one octave — exactly what steady-state
//! serving produces.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tn_chip::energy::EnergyReport;
use tn_chip::nscs::ChipCounterExport;

/// Fixed-point scale for accumulating agreement fractions in an atomic.
const AGREEMENT_SCALE: f64 = 1e6;

/// Latencies below this many ns get exact single-ns buckets.
const LINEAR_CUTOFF: u64 = 16;
/// log2 of the sub-buckets per power of two.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power of two (relative error ≤ 1/SUB_BUCKETS).
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: 16 linear + 16 per octave for exponents 4..=63.
const BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Histogram bucket holding latency `ns`.
fn bucket_index(ns: u64) -> usize {
    if ns < LINEAR_CUTOFF {
        ns as usize
    } else {
        // ns >= 16 so the exponent e = floor(log2 ns) >= SUB_BITS; the
        // mantissa's top SUB_BITS bits (below the leading 1) pick the
        // sub-bucket within the octave.
        let e = 63 - ns.leading_zeros();
        let shift = e - SUB_BITS;
        let m = ((ns >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
        LINEAR_CUTOFF as usize + (shift as usize) * SUB_BUCKETS + m
    }
}

/// Exclusive upper bound (ns) of bucket `i`.
fn bucket_upper_ns(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        i as u64 + 1
    } else {
        let shift = ((i - LINEAR_CUTOFF as usize) / SUB_BUCKETS) as u32;
        let m = ((i - LINEAR_CUTOFF as usize) % SUB_BUCKETS) as u64;
        let base = (SUB_BUCKETS as u64 + m) << shift;
        base.saturating_add(1u64 << shift)
    }
}

/// Inclusive lower bound (ns) of bucket `i`.
fn bucket_lower_ns(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        i as u64
    } else {
        let shift = ((i - LINEAR_CUTOFF as usize) / SUB_BUCKETS) as u32;
        let m = ((i - LINEAR_CUTOFF as usize) % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + m) << shift
    }
}

/// Shared mutable counters updated by workers and submitters.
#[derive(Debug)]
pub(crate) struct Metrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected: AtomicU64,
    pub batches: AtomicU64,
    pub kernel_batches: AtomicU64,
    pub ticks: AtomicU64,
    /// Replica vote-agreement fractions, accumulated ×[`AGREEMENT_SCALE`].
    pub agreement_micros: AtomicU64,
    /// Chip hardware counters folded from worker deployments
    /// ([`ChipCounterExport`] deltas; `chip[0]` = synaptic_ops etc. in
    /// `for_each` order).
    chip: [AtomicU64; 12],
    /// Per request class: `[completed, agreement ×AGREEMENT_SCALE]` — the
    /// spf actuator's evidence, windowed by the observer exactly like the
    /// global pair.
    class_agreement: Vec<[AtomicU64; 2]>,
    /// Per tenant model: `[submitted, completed, ticks,
    /// agreement ×AGREEMENT_SCALE]` — one row per packed tenant (a single
    /// row on solo runtimes), exported as `serve.model.{m}.*`.
    per_model: Vec<[AtomicU64; 4]>,
    /// Per quality tier: `[submitted, completed, escalated, ticks,
    /// confidence ×AGREEMENT_SCALE]` — one row per configured tier
    /// (empty on tier-less runtimes), exported as `serve.tier.{t}.*`.
    /// Completions count against the *requested* tier, so `escalated <=
    /// completed` per row and tier completions sum to at most the global
    /// total (tier-less traffic makes up the difference).
    per_tier: Vec<[AtomicU64; 5]>,
    /// Log-linear latency histogram (see [`bucket_index`]).
    latency: [AtomicU64; BUCKETS],
    latency_sum_ns: AtomicU64,
    /// Frames served per worker thread.
    per_worker_frames: Vec<AtomicU64>,
    /// Chip ticks executed per worker thread.
    per_worker_ticks: Vec<AtomicU64>,
}

impl Metrics {
    pub(crate) fn new(workers: usize, spf_classes: usize, models: usize, tiers: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            kernel_batches: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            agreement_micros: AtomicU64::new(0),
            chip: std::array::from_fn(|_| AtomicU64::new(0)),
            class_agreement: (0..spf_classes.max(1))
                .map(|_| [AtomicU64::new(0), AtomicU64::new(0)])
                .collect(),
            per_model: (0..models.max(1))
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            per_tier: (0..tiers)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_ns: AtomicU64::new(0),
            per_worker_frames: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            per_worker_ticks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record_completion(
        &self,
        worker: usize,
        class: usize,
        model: usize,
        ticks: u64,
        latency: Duration,
        agreement: f32,
    ) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.ticks.fetch_add(ticks, Ordering::Relaxed);
        self.per_worker_frames[worker].fetch_add(1, Ordering::Relaxed);
        self.per_worker_ticks[worker].fetch_add(ticks, Ordering::Relaxed);
        let micros = (f64::from(agreement.clamp(0.0, 1.0)) * AGREEMENT_SCALE) as u64;
        self.agreement_micros.fetch_add(micros, Ordering::Relaxed);
        if let Some(pair) = self.class_agreement.get(class) {
            pair[0].fetch_add(1, Ordering::Relaxed);
            pair[1].fetch_add(micros, Ordering::Relaxed);
        }
        if let Some(row) = self.per_model.get(model) {
            row[1].fetch_add(1, Ordering::Relaxed);
            row[2].fetch_add(ticks, Ordering::Relaxed);
            row[3].fetch_add(micros, Ordering::Relaxed);
        }
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.latency[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Count one accepted submission against tenant `model`.
    pub(crate) fn record_model_submit(&self, model: usize) {
        if let Some(row) = self.per_model.get(model) {
            row[0].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one accepted submission against quality tier `tier`.
    pub(crate) fn record_tier_submit(&self, tier: usize) {
        if let Some(row) = self.per_tier.get(tier) {
            row[0].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one completion against the *requested* quality tier.
    pub(crate) fn record_tier_completion(
        &self,
        tier: usize,
        escalated: bool,
        ticks: u64,
        confidence: f32,
    ) {
        if let Some(row) = self.per_tier.get(tier) {
            row[1].fetch_add(1, Ordering::Relaxed);
            row[2].fetch_add(u64::from(escalated), Ordering::Relaxed);
            row[3].fetch_add(ticks, Ordering::Relaxed);
            let micros = (f64::from(confidence.clamp(0.0, 1.0)) * AGREEMENT_SCALE) as u64;
            row[4].fetch_add(micros, Ordering::Relaxed);
        }
    }

    /// Number of quality tiers tracked (0 on tier-less runtimes).
    pub(crate) fn n_tiers(&self) -> usize {
        self.per_tier.len()
    }

    /// Lifetime `(submitted, completed, escalated, ticks,
    /// confidence_sum×SCALE)` for one quality tier.
    pub(crate) fn tier_progress(&self, tier: usize) -> (u64, u64, u64, u64, u64) {
        self.per_tier.get(tier).map_or((0, 0, 0, 0, 0), |row| {
            (
                row[0].load(Ordering::Relaxed),
                row[1].load(Ordering::Relaxed),
                row[2].load(Ordering::Relaxed),
                row[3].load(Ordering::Relaxed),
                row[4].load(Ordering::Relaxed),
            )
        })
    }

    /// Number of tenant models tracked (1 on solo runtimes).
    pub(crate) fn n_models(&self) -> usize {
        self.per_model.len()
    }

    /// Lifetime `(submitted, completed, ticks, agreement_sum×SCALE)` for
    /// one tenant model.
    pub(crate) fn model_progress(&self, model: usize) -> (u64, u64, u64, u64) {
        self.per_model.get(model).map_or((0, 0, 0, 0), |row| {
            (
                row[0].load(Ordering::Relaxed),
                row[1].load(Ordering::Relaxed),
                row[2].load(Ordering::Relaxed),
                row[3].load(Ordering::Relaxed),
            )
        })
    }

    /// Lifetime `(completed, agreement_sum/SCALE)` pair for one request
    /// class (see [`Metrics::agreement_progress`]).
    pub(crate) fn class_agreement_progress(&self, class: usize) -> (u64, u64) {
        self.class_agreement.get(class).map_or((0, 0), |pair| {
            (pair[0].load(Ordering::Relaxed), pair[1].load(Ordering::Relaxed))
        })
    }

    /// Number of request classes agreement is tracked for.
    pub(crate) fn n_classes(&self) -> usize {
        self.class_agreement.len()
    }

    /// Fold a worker deployment's hardware-counter delta into the global
    /// totals.
    pub(crate) fn fold_chip(&self, delta: &ChipCounterExport) {
        for (slot, v) in self.chip.iter().zip([
            delta.synaptic_ops,
            delta.spikes_in,
            delta.spikes_out,
            delta.routed_spikes,
            delta.mesh_hops,
            delta.output_spikes,
            delta.flushed_spikes,
            delta.ticks,
            delta.axon_visits,
            delta.axon_slots,
            delta.rows_skipped,
            delta.cores_skipped,
        ]) {
            slot.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Current chip hardware-counter totals across all workers.
    pub(crate) fn chip_export(&self) -> ChipCounterExport {
        let load = |i: usize| self.chip[i].load(Ordering::Relaxed);
        ChipCounterExport {
            synaptic_ops: load(0),
            spikes_in: load(1),
            spikes_out: load(2),
            routed_spikes: load(3),
            mesh_hops: load(4),
            output_spikes: load(5),
            flushed_spikes: load(6),
            ticks: load(7),
            axon_visits: load(8),
            axon_slots: load(9),
            rows_skipped: load(10),
            cores_skipped: load(11),
        }
    }

    /// Lifetime `(completed, agreement_sum/SCALE)` pair — the observer
    /// diffs successive reads to get per-window means.
    pub(crate) fn agreement_progress(&self) -> (u64, u64) {
        (
            self.completed.load(Ordering::Relaxed),
            self.agreement_micros.load(Ordering::Relaxed),
        )
    }

    /// Mean agreement over a window delimited by two
    /// [`Metrics::agreement_progress`] reads, `None` if nothing completed
    /// in the window.
    pub(crate) fn window_agreement(prev: (u64, u64), now: (u64, u64)) -> Option<f32> {
        let frames = now.0.saturating_sub(prev.0);
        if frames == 0 {
            return None;
        }
        let sum = now.1.saturating_sub(prev.1) as f64 / AGREEMENT_SCALE;
        Some((sum / frames as f64) as f32)
    }

    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        elapsed: Duration,
        cores: usize,
    ) -> MetricsSnapshot {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let ticks = self.ticks.load(Ordering::Relaxed);
        let chip = self.chip_export();
        let agreement_sum =
            self.agreement_micros.load(Ordering::Relaxed) as f64 / AGREEMENT_SCALE;
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth,
            batches: self.batches.load(Ordering::Relaxed),
            kernel_batches: self.kernel_batches.load(Ordering::Relaxed),
            ticks,
            per_worker_frames: self
                .per_worker_frames
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            per_worker_ticks: self
                .per_worker_ticks
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            p50_latency: quantile(&counts, 0.50),
            p90_latency: quantile(&counts, 0.90),
            p99_latency: quantile(&counts, 0.99),
            mean_latency: self
                .latency_sum_ns
                .load(Ordering::Relaxed)
                .checked_div(completed)
                .map_or(Duration::ZERO, Duration::from_nanos),
            elapsed,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            mean_agreement: if completed == 0 {
                0.0
            } else {
                (agreement_sum / completed as f64) as f32
            },
            energy: EnergyReport::from_counters(chip.synaptic_ops, ticks, cores),
            chip,
        }
    }
}

/// Histogram quantile with sub-bucket linear interpolation.
///
/// The rank's position among the bucket's own samples interpolates
/// between the bucket's bounds, so reported quantiles are no longer
/// quantized to bucket edges (raw edges like 167 772 ns leaked straight
/// into benchmark tables as fake p50s). A rank landing on a bucket's
/// *last* sample still reports the bucket's upper bound, preserving the
/// invariant that p99 over {99 fast, 1 slow} reports the slow outlier.
fn quantile(counts: &[u64], q: f64) -> Duration {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    // floor(q·n) + 1: the smallest value with at most (1-q)·n samples
    // above it, so p99 over {99 fast, 1 slow} reports the slow outlier.
    let rank = ((total as f64 * q).floor() as u64 + 1).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let lower = bucket_lower_ns(i);
            let width = bucket_upper_ns(i).saturating_sub(lower);
            let frac = (rank - seen) as f64 / c as f64;
            let ns = lower as f64 + frac * width as f64;
            return Duration::from_nanos(ns.round() as u64);
        }
        seen += c;
    }
    Duration::from_nanos(u64::MAX)
}

/// A live admission-control gauge: how loaded the runtime is *right now*.
///
/// Unlike [`MetricsSnapshot`] (a full histogram walk meant for periodic
/// reporting), this is three atomic loads — cheap enough for a network
/// front-end to read on every admission decision. Previously queue depth
/// was only visible inside telemetry snapshot exports; the gateway needs
/// it synchronously to shed load and compute `Retry-After` hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests sitting in the submission queue, not yet drained.
    pub depth: usize,
    /// Configured queue capacity ([`crate::ServeConfig::queue_capacity`]).
    pub capacity: usize,
    /// Requests accepted but not yet completed (queued + being served).
    pub in_flight: u64,
}

impl QueueStats {
    /// Queue fill fraction in `[0, 1]`.
    pub fn fill(&self) -> f64 {
        self.depth as f64 / self.capacity.max(1) as f64
    }
}

/// A point-in-time view of the runtime's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Requests refused by [`crate::Backpressure::Reject`].
    pub rejected: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Micro-batches drained by workers.
    pub batches: u64,
    /// Kernel-level lockstep lane batches executed
    /// ([`crate::ServeConfig::kernel_batch`] slices of drained
    /// micro-batches, each served by one `Deployment::run_frames` call).
    pub kernel_batches: u64,
    /// Total chip ticks across all workers.
    pub ticks: u64,
    /// Frames served per worker thread.
    pub per_worker_frames: Vec<u64>,
    /// Chip ticks executed per worker thread.
    pub per_worker_ticks: Vec<u64>,
    /// Median request latency (bucketed; ≤ 1/16 resolution).
    pub p50_latency: Duration,
    /// 90th-percentile request latency (bucketed; ≤ 1/16 resolution).
    pub p90_latency: Duration,
    /// 99th-percentile request latency (bucketed; ≤ 1/16 resolution).
    pub p99_latency: Duration,
    /// Mean request latency (exact).
    pub mean_latency: Duration,
    /// Wall-clock time since the runtime started.
    pub elapsed: Duration,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Mean replica vote agreement over every completed request (0 when
    /// nothing completed). 1.0 = unanimous replicas; the paper's
    /// duplication axis is buying nothing once this saturates.
    pub mean_agreement: f32,
    /// TrueNorth energy model applied to the served workload
    /// (synaptic-op and tick counters aggregated across workers).
    pub energy: EnergyReport,
    /// Chip hardware counters aggregated across all worker deployments.
    pub chip: ChipCounterExport,
}

impl MetricsSnapshot {
    /// Model-estimated chip energy per served frame, in joules.
    pub fn joules_per_frame(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.energy.total_joules() / self.completed as f64
        }
    }

    /// Mean micro-batch size (requests per queue drain).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// Mean kernel-batch size (frames fused per lockstep kernel run).
    pub fn mean_kernel_batch_size(&self) -> f64 {
        if self.kernel_batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.kernel_batches as f64
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "served {}/{} requests ({} rejected) in {:.2?}  —  {:.1} req/s",
            self.completed, self.submitted, self.rejected, self.elapsed, self.throughput_rps
        )?;
        writeln!(
            f,
            "latency p50 {:?}  p90 {:?}  p99 {:?}  mean {:?}  |  queue depth {}  mean batch {:.2}",
            self.p50_latency,
            self.p90_latency,
            self.p99_latency,
            self.mean_latency,
            self.queue_depth,
            self.mean_batch_size()
        )?;
        writeln!(
            f,
            "kernel batches {}  mean lanes/batch {:.2}",
            self.kernel_batches,
            self.mean_kernel_batch_size()
        )?;
        writeln!(
            f,
            "chip ticks {}  per-worker frames {:?}  mean agreement {:.3}  energy/frame {:.3e} J",
            self.ticks,
            self.per_worker_frames,
            self.mean_agreement,
            self.joules_per_frame()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_latencies() {
        let m = Metrics::new(2, 2, 1, 0);
        for _ in 0..99 {
            m.record_completion(0, 0, 0, 8, Duration::from_micros(100), 1.0);
        }
        m.record_completion(1, 1, 0, 8, Duration::from_millis(50), 0.5);
        let snap = m.snapshot(0, Duration::from_secs(1), 4);
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.ticks, 800);
        assert_eq!(snap.per_worker_frames, vec![99, 1]);
        // p50/p90 within 1/16 of 100 µs; p99 within 1/16 of the 50 ms
        // outlier — the quantiles must actually separate.
        assert!(snap.p50_latency > Duration::from_micros(100));
        assert!(snap.p50_latency <= Duration::from_micros(107));
        assert!(snap.p90_latency <= Duration::from_micros(107));
        assert!(snap.p99_latency > Duration::from_millis(50));
        assert!(snap.p99_latency <= Duration::from_micros(53_200));
        assert!(snap.mean_latency > Duration::from_micros(100));
        assert!((snap.throughput_rps - 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_separate_within_one_octave() {
        // 1.0 ms and 1.9 ms share a power of two; the old power-of-two
        // buckets reported p50 == p99 == 2.097 ms for this workload.
        let m = Metrics::new(1, 1, 1, 0);
        for _ in 0..90 {
            m.record_completion(0, 0, 0, 1, Duration::from_micros(1000), 1.0);
        }
        for _ in 0..10 {
            m.record_completion(0, 0, 0, 1, Duration::from_micros(1900), 1.0);
        }
        let snap = m.snapshot(0, Duration::from_secs(1), 1);
        assert!(snap.p50_latency < snap.p99_latency, "quantiles degenerate");
        assert!(snap.p50_latency > Duration::from_micros(1000));
        assert!(snap.p50_latency <= Duration::from_micros(1067));
        assert!(snap.p99_latency > Duration::from_micros(1900));
        assert!(snap.p99_latency <= Duration::from_micros(2027));
    }

    #[test]
    fn bucket_math_bounds_relative_error() {
        // Every latency lands in a bucket whose upper bound exceeds it by
        // at most 1/16 (plus 1 ns of rounding).
        for ns in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1_000,
            99_999,
            100_000,
            1_000_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(ns);
            assert!(i < BUCKETS, "index {i} for {ns}");
            let ub = bucket_upper_ns(i);
            assert!(ub > ns || ub == u64::MAX, "ub {ub} for {ns}");
            assert!(
                ub.saturating_sub(ns) <= ns / 16 + 1,
                "bucket too coarse: {ns} -> {ub}"
            );
            if i + 1 < BUCKETS {
                // Buckets tile: the next bucket starts where this one ends.
                assert_eq!(bucket_index(ub), i + 1, "gap after {ns}");
            }
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 µs lands in the bucket [98 304 ns, 102 400 ns) (shift 12,
        // sub-bucket 8). With 99 samples there and rank 51/91, the
        // interpolated p50/p90 sit strictly inside the bucket instead of
        // on its 102 400 ns edge; the single 50 ms outlier is its
        // bucket's last sample, so p99 still reports that bucket's upper
        // bound (50 331 648 ns).
        let m = Metrics::new(1, 1, 1, 0);
        for _ in 0..99 {
            m.record_completion(0, 0, 0, 1, Duration::from_micros(100), 1.0);
        }
        m.record_completion(0, 0, 0, 1, Duration::from_millis(50), 1.0);
        let snap = m.snapshot(0, Duration::from_secs(1), 1);
        // lower + rank/count × width = 98 304 + 51/99 × 4 096 ≈ 100 414.
        assert_eq!(snap.p50_latency, Duration::from_nanos(100_414));
        assert_eq!(snap.p90_latency, Duration::from_nanos(102_069));
        assert_eq!(snap.p99_latency, Duration::from_nanos(50_331_648));
        // Not quantized to the raw bucket edge any more.
        assert_ne!(snap.p50_latency, Duration::from_nanos(102_400));
        assert_ne!(snap.p50_latency, snap.p90_latency);
    }

    #[test]
    fn per_model_rows_split_completions() {
        let m = Metrics::new(1, 1, 2, 0);
        assert_eq!(m.n_models(), 2);
        m.record_model_submit(0);
        m.record_model_submit(1);
        m.record_model_submit(1);
        m.record_completion(0, 0, 0, 8, Duration::from_micros(10), 1.0);
        m.record_completion(0, 0, 1, 16, Duration::from_micros(10), 0.5);
        m.record_completion(0, 0, 1, 16, Duration::from_micros(10), 0.5);
        assert_eq!(m.model_progress(0), (1, 1, 8, 1_000_000));
        assert_eq!(m.model_progress(1), (2, 2, 32, 1_000_000));
        assert_eq!(m.model_progress(7), (0, 0, 0, 0), "out of range is zero");
        // The global counters see every completion regardless of model.
        assert_eq!(m.completed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let m = Metrics::new(1, 1, 1, 0);
        let snap = m.snapshot(3, Duration::ZERO, 4);
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.p50_latency, Duration::ZERO);
        assert_eq!(snap.mean_latency, Duration::ZERO);
        assert_eq!(snap.throughput_rps, 0.0);
        assert_eq!(snap.joules_per_frame(), 0.0);
    }

    #[test]
    fn display_mentions_throughput_and_energy() {
        let m = Metrics::new(1, 1, 1, 0);
        m.record_completion(0, 0, 0, 8, Duration::from_micros(10), 0.75);
        let text = m.snapshot(0, Duration::from_secs(1), 4).to_string();
        assert!(text.contains("req/s"), "{text}");
        assert!(text.contains("energy/frame"), "{text}");
    }
}

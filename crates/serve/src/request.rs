//! The unified request type accepted by `ServeRuntime::submit`.
//!
//! One builder replaces the four positional `submit*` variants that had
//! accreted (`submit`, `submit_class`, `submit_model`,
//! `submit_model_class`): `frame` is required, everything else is
//! optional and defaults to the runtime's defaults. The gateway's
//! `/v1/classify` JSON body mirrors this struct key-for-key
//! (`frame`/`model`/`class`/`quality`).
//!
//! `From<Vec<f32>>` keeps the common one-liner working unchanged:
//! `rt.submit(vec![0.5, 0.25])` is `rt.submit(SubmitRequest::new(...))`.

/// One classify request: a frame plus optional routing knobs.
///
/// ```
/// use tn_serve::SubmitRequest;
/// let req = SubmitRequest::new(vec![0.5, 0.25])
///     .model(0)
///     .class(0)
///     .quality("fast");
/// assert_eq!(req.quality.as_deref(), Some("fast"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SubmitRequest {
    /// Input frame: per-channel spike rates in `[0, 1]`.
    pub frame: Vec<f32>,
    /// Tenant model on a packed runtime (default `0`, the only valid
    /// value on a solo runtime).
    pub model: usize,
    /// Request class for the controller's per-class spf actuator
    /// (default `0`).
    pub class: usize,
    /// Quality tier name; `None` serves on the runtime's default
    /// replica set at the live spf.
    pub quality: Option<String>,
    /// Explicit determinism sequence number; `None` (the default) lets
    /// the runtime claim the next one. See [`SubmitRequest::at_seq`].
    pub seq: Option<u64>,
}

impl SubmitRequest {
    /// A request for `frame` with default model, class, no tier, and a
    /// runtime-assigned sequence number.
    pub fn new(frame: Vec<f32>) -> Self {
        Self {
            frame,
            model: 0,
            class: 0,
            quality: None,
            seq: None,
        }
    }

    /// Route to tenant `model` on a packed runtime.
    #[must_use]
    pub fn model(mut self, model: usize) -> Self {
        self.model = model;
        self
    }

    /// Tag with request `class` for per-class spf control.
    #[must_use]
    pub fn class(mut self, class: usize) -> Self {
        self.class = class;
        self
    }

    /// Serve on the named quality tier.
    #[must_use]
    pub fn quality(mut self, quality: impl Into<String>) -> Self {
        self.quality = Some(quality.into());
        self
    }

    /// Pin the request's determinism sequence number instead of letting
    /// the runtime claim the next one — *shard-addressable submission*.
    ///
    /// A response is a pure function of `(cfg.seed, seq, spf)`, so a
    /// front-end that owns the sequence counter (the `tn-fleet` router)
    /// can dispatch request `k` to *any* shard built from the same
    /// `(spec, config)` and get an answer bit-identical to a solo
    /// runtime's `k`-th request — including after re-routing to a
    /// different shard on connection loss.
    ///
    /// The runtime's own counter is advanced past an explicit seq, so
    /// occasional mixing cannot hand out a duplicate; but interleaving
    /// explicit and automatic submissions makes the *automatic* seqs
    /// depend on arrival order, so pick one scheme per runtime. On
    /// packed runtimes the per-model determinism key is still the
    /// per-model submission counter, not this global seq.
    #[must_use]
    pub fn at_seq(mut self, seq: u64) -> Self {
        self.seq = Some(seq);
        self
    }
}

impl From<Vec<f32>> for SubmitRequest {
    fn from(frame: Vec<f32>) -> Self {
        Self::new(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let req = SubmitRequest::new(vec![1.0]);
        assert_eq!((req.model, req.class, req.quality.as_deref()), (0, 0, None));
        assert_eq!(req.seq, None);
        let req = SubmitRequest::new(vec![1.0]).model(2).class(1).quality("q");
        assert_eq!(
            (req.model, req.class, req.quality.as_deref()),
            (2, 1, Some("q"))
        );
        let req = SubmitRequest::new(vec![1.0]).at_seq(41);
        assert_eq!(req.seq, Some(41));
    }

    #[test]
    fn from_vec_is_the_default_request() {
        let req: SubmitRequest = vec![0.5f32].into();
        assert_eq!(req, SubmitRequest::new(vec![0.5]));
    }
}

//! Runtime configuration and its validated builder.

use std::time::Duration;

use tn_chip::nscs::ConnectivityMode;

use crate::control::ControllerConfig;
use crate::error::ServeError;
use crate::tier::{validate_tiers, QualityTier};

/// Telemetry export settings for a [`crate::ServeRuntime`].
///
/// When set, the runtime spawns an observer thread that periodically
/// assembles a [`tn_telemetry::Snapshot`] (serve counters, chip hardware
/// counters, queue/control gauges, per-stage latency spans) and emits it
/// through the configured [`tn_telemetry::MetricsSink`]. A final snapshot
/// is always emitted at shutdown, so even a short-lived runtime exports at
/// least one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Snapshot export period.
    pub interval: Duration,
    /// Capacity of the per-stage span ring buffer
    /// ([`tn_telemetry::SpanRecorder`]).
    pub span_ring: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(250),
            span_ring: 1024,
        }
    }
}

impl TelemetryConfig {
    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.interval.is_zero() {
            return Err(ServeError::BadConfig(
                "telemetry interval must be > 0".into(),
            ));
        }
        if self.span_ring == 0 {
            return Err(ServeError::BadConfig(
                "telemetry span_ring must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// What `submit` does when the bounded queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the submitting thread until a slot frees up (default; keeps
    /// every accepted request and throttles the producer instead).
    #[default]
    Block,
    /// Fail fast with [`ServeError::QueueFull`] so the caller can shed
    /// load or retry.
    Reject,
}

/// Configuration for a [`crate::ServeRuntime`].
///
/// Construct through the validated builder: [`ServeConfig::builder`] (or
/// [`ServeConfigBuilder::new`]), chain setters, then
/// [`ServeConfigBuilder::build`], which rejects inconsistent knob
/// combinations up front instead of letting them surface mid-serve.
///
/// ```
/// use tn_serve::{Backpressure, ServeConfig};
/// let cfg = ServeConfig::builder(7)
///     .replicas(4)
///     .workers(2)
///     .kernel_batch(8)
///     .backpressure(Backpressure::Reject)
///     .build()
///     .expect("consistent config");
/// assert_eq!(cfg.replicas, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Spatial copies deployed per worker chip; each casts one vote per
    /// request (the paper's duplication axis).
    pub replicas: usize,
    /// Worker threads, each owning a full replica set (a cloned
    /// deployment, so every worker holds bit-identical replicas).
    pub workers: usize,
    /// Stochastic input samples (spikes per frame) per request.
    pub spf: usize,
    /// Master seed: drives replica Bernoulli sampling at build time and,
    /// combined with each request's sequence number, the per-frame spike
    /// trains. Results are a pure function of `(seed, seq)` — never of
    /// worker count, batching, or scheduling.
    pub seed: u64,
    /// Bounded submission-queue capacity.
    pub queue_capacity: usize,
    /// Max requests a worker drains per queue lock (micro-batch size).
    pub batch_max: usize,
    /// Frames fused per compiled-kernel lockstep run
    /// ([`tn_chip::kernel::LaneBatch`]): a worker slices each drained
    /// micro-batch into groups of up to this many frames and ticks each
    /// group through one crossbar walk per tick. Results are bit-identical
    /// for any value (1 = frame-at-a-time); larger values amortize row
    /// loads across requests at the cost of per-lane scratch memory.
    pub kernel_batch: usize,
    /// Full-queue behaviour.
    pub backpressure: Backpressure,
    /// How replica crossbars realize fractional weights.
    pub connectivity: ConnectivityMode,
    /// Threads each worker's compiled chip fans cores across per tick
    /// (1 = inline, the default — worker-level parallelism usually
    /// saturates the machine first; raise this for few-worker,
    /// many-replica setups). Never affects results.
    pub core_threads: usize,
    /// Adaptive control loop (`None` = static knobs, the default). When
    /// set, an observer thread runs a [`crate::Controller`] that adapts
    /// the live fusion width within `1 ..= kernel_batch` from queue depth
    /// and the replica count within the configured bounds from the live
    /// vote-agreement metric. With `None`, results are bit-identical to a
    /// runtime without the control machinery.
    pub controller: Option<ControllerConfig>,
    /// Periodic snapshot export (`None` = no observer exports, the
    /// default). See [`TelemetryConfig`].
    pub telemetry: Option<TelemetryConfig>,
    /// Quality tiers: named (replicas × spf × kernel_batch) operating
    /// points selectable per request via `SubmitRequest::quality`, each
    /// with a calibrated-confidence floor and optional escalation target
    /// (empty = no tiers, the default). See [`QualityTier`]. Tiers are
    /// not supported on packed multi-tenant runtimes.
    pub tiers: Vec<QualityTier>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            workers: 2,
            spf: 8,
            seed: 7,
            queue_capacity: 256,
            batch_max: 16,
            kernel_batch: 8,
            backpressure: Backpressure::Block,
            connectivity: ConnectivityMode::IndependentPerCopy,
            core_threads: 1,
            controller: None,
            telemetry: None,
            tiers: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// Default configuration under the given master seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Start a validated builder under the given master seed.
    pub fn builder(seed: u64) -> ServeConfigBuilder {
        ServeConfigBuilder::new(seed)
    }

    /// Set the replica (spatial copy) count per worker.
    #[deprecated(since = "0.4.0", note = "use ServeConfig::builder(..).replicas(..)")]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Set the worker-thread count.
    #[deprecated(since = "0.4.0", note = "use ServeConfig::builder(..).workers(..)")]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set spikes per frame.
    #[deprecated(since = "0.4.0", note = "use ServeConfig::builder(..).spf(..)")]
    pub fn with_spf(mut self, spf: usize) -> Self {
        self.spf = spf;
        self
    }

    /// Set the submission-queue capacity.
    #[deprecated(
        since = "0.4.0",
        note = "use ServeConfig::builder(..).queue_capacity(..)"
    )]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-worker micro-batch size.
    #[deprecated(since = "0.4.0", note = "use ServeConfig::builder(..).batch_max(..)")]
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Set the full-queue behaviour.
    #[deprecated(
        since = "0.4.0",
        note = "use ServeConfig::builder(..).backpressure(..)"
    )]
    pub fn with_backpressure(mut self, backpressure: Backpressure) -> Self {
        self.backpressure = backpressure;
        self
    }

    /// Set the connectivity mode for replica sampling.
    #[deprecated(
        since = "0.4.0",
        note = "use ServeConfig::builder(..).connectivity(..)"
    )]
    pub fn with_connectivity(mut self, connectivity: ConnectivityMode) -> Self {
        self.connectivity = connectivity;
        self
    }

    /// Set the per-worker intra-tick core parallelism.
    #[deprecated(
        since = "0.4.0",
        note = "use ServeConfig::builder(..).core_threads(..)"
    )]
    pub fn with_core_threads(mut self, core_threads: usize) -> Self {
        self.core_threads = core_threads;
        self
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("replicas", self.replicas),
            ("workers", self.workers),
            ("spf", self.spf),
            ("queue_capacity", self.queue_capacity),
            ("batch_max", self.batch_max),
            ("kernel_batch", self.kernel_batch),
            ("core_threads", self.core_threads),
        ] {
            if v == 0 {
                return Err(ServeError::BadConfig(format!("{name} must be >= 1")));
            }
        }
        if self.batch_max > self.queue_capacity {
            return Err(ServeError::BadConfig(format!(
                "batch_max ({}) must not exceed queue_capacity ({})",
                self.batch_max, self.queue_capacity
            )));
        }
        if let Some(controller) = &self.controller {
            controller.validate()?;
            if !(controller.min_replicas..=controller.max_replicas).contains(&self.replicas) {
                return Err(ServeError::BadConfig(format!(
                    "replicas ({}) outside controller bounds [{}, {}]",
                    self.replicas, controller.min_replicas, controller.max_replicas
                )));
            }
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.validate()?;
        }
        validate_tiers(&self.tiers)?;
        Ok(())
    }
}

/// Validated builder for [`ServeConfig`]: the only construction path that
/// guarantees a consistent configuration, because [`ServeConfigBuilder::build`]
/// runs every cross-field check before handing the config out.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Start from the defaults under the given master seed.
    pub fn new(seed: u64) -> Self {
        Self {
            cfg: ServeConfig::new(seed),
        }
    }

    /// Replica (spatial copy) count per worker.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.cfg.replicas = replicas;
        self
    }

    /// Worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Stochastic input samples (spikes per frame) per request.
    pub fn spf(mut self, spf: usize) -> Self {
        self.cfg.spf = spf;
        self
    }

    /// Master seed (see [`ServeConfig::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Bounded submission-queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity;
        self
    }

    /// Max requests a worker drains per queue lock.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.cfg.batch_max = batch_max;
        self
    }

    /// Frames fused per compiled-kernel lockstep run (see
    /// [`ServeConfig::kernel_batch`]).
    pub fn kernel_batch(mut self, kernel_batch: usize) -> Self {
        self.cfg.kernel_batch = kernel_batch;
        self
    }

    /// Full-queue behaviour.
    pub fn backpressure(mut self, backpressure: Backpressure) -> Self {
        self.cfg.backpressure = backpressure;
        self
    }

    /// Connectivity mode for replica sampling.
    pub fn connectivity(mut self, connectivity: ConnectivityMode) -> Self {
        self.cfg.connectivity = connectivity;
        self
    }

    /// Per-worker intra-tick core parallelism.
    pub fn core_threads(mut self, core_threads: usize) -> Self {
        self.cfg.core_threads = core_threads;
        self
    }

    /// Enable the adaptive control loop (see [`ServeConfig::controller`]).
    pub fn controller(mut self, controller: ControllerConfig) -> Self {
        self.cfg.controller = Some(controller);
        self
    }

    /// Enable periodic telemetry snapshot export (see
    /// [`ServeConfig::telemetry`]).
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = Some(telemetry);
        self
    }

    /// Replace the quality-tier table (see [`ServeConfig::tiers`]).
    pub fn tiers(mut self, tiers: Vec<QualityTier>) -> Self {
        self.cfg.tiers = tiers;
        self
    }

    /// Append one quality tier (see [`ServeConfig::tiers`]).
    pub fn tier(mut self, tier: QualityTier) -> Self {
        self.cfg.tiers.push(tier);
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] naming the first offending field: any
    /// zero-valued count knob, or `batch_max > queue_capacity`.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_builds() {
        let cfg = ServeConfig::builder(42)
            .replicas(4)
            .workers(3)
            .spf(16)
            .queue_capacity(8)
            .batch_max(2)
            .kernel_batch(4)
            .backpressure(Backpressure::Reject)
            .core_threads(2)
            .build()
            .expect("valid");
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.replicas, 4);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.spf, 16);
        assert_eq!(cfg.queue_capacity, 8);
        assert_eq!(cfg.batch_max, 2);
        assert_eq!(cfg.kernel_batch, 4);
        assert_eq!(cfg.backpressure, Backpressure::Reject);
        assert_eq!(cfg.core_threads, 2);
    }

    #[test]
    fn every_zero_knob_is_rejected_with_its_own_message() {
        for (field, builder) in [
            ("replicas", ServeConfig::builder(1).replicas(0)),
            ("workers", ServeConfig::builder(1).workers(0)),
            ("spf", ServeConfig::builder(1).spf(0)),
            (
                "queue_capacity",
                ServeConfig::builder(1).queue_capacity(0).batch_max(0),
            ),
            ("batch_max", ServeConfig::builder(1).batch_max(0)),
            ("kernel_batch", ServeConfig::builder(1).kernel_batch(0)),
            ("core_threads", ServeConfig::builder(1).core_threads(0)),
        ] {
            match builder.build() {
                Err(ServeError::BadConfig(msg)) => {
                    assert!(msg.contains(field), "expected {field} in {msg:?}")
                }
                other => panic!("{field} = 0 accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_max_must_fit_in_queue() {
        match ServeConfig::builder(1)
            .queue_capacity(8)
            .batch_max(9)
            .build()
        {
            Err(ServeError::BadConfig(msg)) => {
                assert!(
                    msg.contains("batch_max") && msg.contains("queue_capacity"),
                    "{msg:?}"
                );
            }
            other => panic!("oversized batch_max accepted: {other:?}"),
        }
        // Equality is fine: a worker may drain the whole queue at once.
        ServeConfig::builder(1)
            .queue_capacity(8)
            .batch_max(8)
            .build()
            .expect("batch_max == queue_capacity is valid");
    }

    #[test]
    fn controller_bounds_must_contain_initial_replicas() {
        let ctl = ControllerConfig {
            min_replicas: 2,
            max_replicas: 4,
            ..ControllerConfig::default()
        };
        match ServeConfig::builder(1).replicas(1).controller(ctl.clone()).build() {
            Err(ServeError::BadConfig(msg)) => {
                assert!(msg.contains("controller bounds"), "{msg:?}")
            }
            other => panic!("out-of-bounds replicas accepted: {other:?}"),
        }
        ServeConfig::builder(1)
            .replicas(3)
            .controller(ctl)
            .build()
            .expect("in-bounds replicas are valid");
    }

    #[test]
    fn controller_and_telemetry_configs_are_validated_by_build() {
        let bad_ctl = ControllerConfig {
            queue_low: 0.9,
            queue_high: 0.5,
            ..ControllerConfig::default()
        };
        assert!(matches!(
            ServeConfig::builder(1).controller(bad_ctl).build(),
            Err(ServeError::BadConfig(msg)) if msg.contains("queue")
        ));
        let bad_tel = TelemetryConfig {
            span_ring: 0,
            ..TelemetryConfig::default()
        };
        assert!(matches!(
            ServeConfig::builder(1).telemetry(bad_tel).build(),
            Err(ServeError::BadConfig(msg)) if msg.contains("span_ring")
        ));
        ServeConfig::builder(1)
            .controller(ControllerConfig::default())
            .telemetry(TelemetryConfig::default())
            .build()
            .expect("defaults are consistent");
    }

    #[test]
    fn tier_tables_are_validated_by_build() {
        let cfg = ServeConfig::builder(1)
            .tier(QualityTier::new("fast", 1, 2).confidence_target(0.8).escalate_to("certain"))
            .tier(QualityTier::new("certain", 4, 8))
            .build()
            .expect("valid tier table");
        assert_eq!(cfg.tiers.len(), 2);
        assert!(matches!(
            ServeConfig::builder(1)
                .tier(QualityTier::new("fast", 1, 2).escalate_to("missing"))
                .build(),
            Err(ServeError::BadConfig(msg)) if msg.contains("missing")
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_still_compile_and_agree_with_builder() {
        let legacy = ServeConfig::new(42)
            .with_replicas(4)
            .with_workers(3)
            .with_spf(16)
            .with_queue_capacity(32)
            .with_batch_max(2)
            .with_backpressure(Backpressure::Reject)
            .with_connectivity(ConnectivityMode::RuntimeStochastic)
            .with_core_threads(2);
        legacy.validate().expect("valid");
        let built = ServeConfig::builder(42)
            .replicas(4)
            .workers(3)
            .spf(16)
            .queue_capacity(32)
            .batch_max(2)
            .backpressure(Backpressure::Reject)
            .connectivity(ConnectivityMode::RuntimeStochastic)
            .core_threads(2)
            .build()
            .expect("valid");
        assert_eq!(legacy, built);
    }
}

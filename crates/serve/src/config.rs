//! Runtime configuration and its builder.

use tn_chip::nscs::ConnectivityMode;

use crate::error::ServeError;

/// What `submit` does when the bounded queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the submitting thread until a slot frees up (default; keeps
    /// every accepted request and throttles the producer instead).
    #[default]
    Block,
    /// Fail fast with [`ServeError::QueueFull`] so the caller can shed
    /// load or retry.
    Reject,
}

/// Configuration for a [`crate::ServeRuntime`].
///
/// Builder-style: start from [`ServeConfig::default`] (or
/// [`ServeConfig::new`]) and chain `with_*` setters.
///
/// ```
/// use tn_serve::{Backpressure, ServeConfig};
/// let cfg = ServeConfig::new(7)
///     .with_replicas(4)
///     .with_workers(2)
///     .with_backpressure(Backpressure::Reject);
/// assert_eq!(cfg.replicas, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Spatial copies deployed per worker chip; each casts one vote per
    /// request (the paper's duplication axis).
    pub replicas: usize,
    /// Worker threads, each owning a full replica set (a cloned
    /// deployment, so every worker holds bit-identical replicas).
    pub workers: usize,
    /// Stochastic input samples (spikes per frame) per request.
    pub spf: usize,
    /// Master seed: drives replica Bernoulli sampling at build time and,
    /// combined with each request's sequence number, the per-frame spike
    /// trains. Results are a pure function of `(seed, seq)` — never of
    /// worker count or scheduling.
    pub seed: u64,
    /// Bounded submission-queue capacity.
    pub queue_capacity: usize,
    /// Max requests a worker drains per queue lock (micro-batch size).
    pub batch_max: usize,
    /// Full-queue behaviour.
    pub backpressure: Backpressure,
    /// How replica crossbars realize fractional weights.
    pub connectivity: ConnectivityMode,
    /// Threads each worker's compiled chip fans cores across per tick
    /// (1 = inline, the default — worker-level parallelism usually
    /// saturates the machine first; raise this for few-worker,
    /// many-replica setups). Never affects results.
    pub core_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            workers: 2,
            spf: 8,
            seed: 7,
            queue_capacity: 256,
            batch_max: 16,
            backpressure: Backpressure::Block,
            connectivity: ConnectivityMode::IndependentPerCopy,
            core_threads: 1,
        }
    }
}

impl ServeConfig {
    /// Default configuration under the given master seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the replica (spatial copy) count per worker.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set spikes per frame.
    pub fn with_spf(mut self, spf: usize) -> Self {
        self.spf = spf;
        self
    }

    /// Set the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-worker micro-batch size.
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Set the full-queue behaviour.
    pub fn with_backpressure(mut self, backpressure: Backpressure) -> Self {
        self.backpressure = backpressure;
        self
    }

    /// Set the connectivity mode for replica sampling.
    pub fn with_connectivity(mut self, connectivity: ConnectivityMode) -> Self {
        self.connectivity = connectivity;
        self
    }

    /// Set the per-worker intra-tick core parallelism.
    pub fn with_core_threads(mut self, core_threads: usize) -> Self {
        self.core_threads = core_threads;
        self
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("replicas", self.replicas),
            ("workers", self.workers),
            ("spf", self.spf),
            ("queue_capacity", self.queue_capacity),
            ("batch_max", self.batch_max),
            ("core_threads", self.core_threads),
        ] {
            if v == 0 {
                return Err(ServeError::BadConfig(format!("{name} must be >= 1")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_validates() {
        let cfg = ServeConfig::new(42)
            .with_replicas(4)
            .with_workers(3)
            .with_spf(16)
            .with_queue_capacity(8)
            .with_batch_max(2)
            .with_backpressure(Backpressure::Reject);
        cfg.validate().expect("valid");
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.replicas, 4);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.spf, 16);
        assert_eq!(cfg.queue_capacity, 8);
        assert_eq!(cfg.batch_max, 2);
        assert_eq!(cfg.backpressure, Backpressure::Reject);
    }

    #[test]
    fn zero_fields_are_rejected() {
        for cfg in [
            ServeConfig::default().with_replicas(0),
            ServeConfig::default().with_workers(0),
            ServeConfig::default().with_spf(0),
            ServeConfig::default().with_queue_capacity(0),
            ServeConfig::default().with_batch_max(0),
            ServeConfig::default().with_core_threads(0),
        ] {
            assert!(matches!(cfg.validate(), Err(ServeError::BadConfig(_))));
        }
    }
}

//! Quality tiers: named (replicas × spf × kernel_batch) operating points
//! with calibrated confidence and an abstain/escalate path.
//!
//! The replica-vote ensemble is a posterior sample in disguise: every
//! Bernoulli-sampled deployment copy is one draw from the distribution the
//! trained synapse probabilities define, so the pooled vote *margin* is an
//! uncertainty signal. A [`QualityTier`] names one point on the paper's
//! copies×spf accuracy/occupation/performance grid and attaches a
//! confidence contract to it: responses whose calibrated confidence falls
//! below [`QualityTier::confidence_target`] are transparently re-run on
//! the tier named by [`QualityTier::escalate_to`] (single hop, validated
//! at build time).
//!
//! Confidence starts life as the raw vote margin ([`vote_margin`]) and is
//! mapped to an empirical correctness probability by a [`CalibrationMap`]
//! fitted from a small held-out pass at deploy time
//! (`ServeRuntime::calibrate_tiers`). The map is monotone by construction
//! (pool-adjacent-violators), so reported confidence always orders the
//! same way margins do.

use crate::error::ServeError;

/// One named serving tier: a (replicas, spf, kernel_batch) operating
/// point plus its confidence contract.
///
/// Construct with [`QualityTier::new`] and the chained setters; attach to
/// a runtime through `ServeConfigBuilder::tier`.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityTier {
    /// Tier name, matched against `SubmitRequest::quality`.
    pub name: String,
    /// Replica copies pooled per request on this tier.
    pub replicas: usize,
    /// Spikes per frame on this tier (fixed; the controller's spf
    /// actuator only drives the default, tier-less path).
    pub spf: usize,
    /// Kernel fusion width for this tier's batches; `0` inherits the
    /// runtime's `kernel_batch`.
    pub kernel_batch: usize,
    /// Calibrated-confidence floor. A response below it escalates when
    /// [`QualityTier::escalate_to`] names a target; values above `1.0`
    /// force escalation on every request (useful in tests).
    pub confidence_target: f32,
    /// Tier to re-run low-confidence answers on (single hop — the target
    /// tier's own `escalate_to` is never followed).
    pub escalate_to: Option<String>,
    /// Ensemble sample index for this tier's deployment: `0` reproduces
    /// the default build; other values realize fresh Bernoulli synapse
    /// draws (see `Deployment::build_with_sample`).
    pub sample: u64,
}

impl QualityTier {
    /// A tier with the given operating point, no confidence floor, no
    /// escalation, and the default deployment sample.
    pub fn new(name: impl Into<String>, replicas: usize, spf: usize) -> Self {
        Self {
            name: name.into(),
            replicas,
            spf,
            kernel_batch: 0,
            confidence_target: 0.0,
            escalate_to: None,
            sample: 0,
        }
    }

    /// Set this tier's kernel fusion width (`0` inherits the runtime's).
    #[must_use]
    pub fn kernel_batch(mut self, kernel_batch: usize) -> Self {
        self.kernel_batch = kernel_batch;
        self
    }

    /// Set the calibrated-confidence floor below which answers escalate.
    #[must_use]
    pub fn confidence_target(mut self, target: f32) -> Self {
        self.confidence_target = target;
        self
    }

    /// Name the tier that low-confidence answers re-run on.
    #[must_use]
    pub fn escalate_to(mut self, tier: impl Into<String>) -> Self {
        self.escalate_to = Some(tier.into());
        self
    }

    /// Set the ensemble sample index for this tier's deployment.
    #[must_use]
    pub fn sample(mut self, sample: u64) -> Self {
        self.sample = sample;
        self
    }
}

/// Validate a tier table: unique non-empty names, live knobs, and
/// escalation edges that resolve to another existing tier.
///
/// # Errors
///
/// Returns [`ServeError::BadConfig`] naming the first offending tier.
pub(crate) fn validate_tiers(tiers: &[QualityTier]) -> Result<(), ServeError> {
    for (i, t) in tiers.iter().enumerate() {
        if t.name.is_empty() {
            return Err(ServeError::BadConfig(format!("tier {i}: empty name")));
        }
        if tiers[..i].iter().any(|p| p.name == t.name) {
            return Err(ServeError::BadConfig(format!(
                "tier {:?}: duplicate name",
                t.name
            )));
        }
        if t.replicas == 0 {
            return Err(ServeError::BadConfig(format!(
                "tier {:?}: replicas must be >= 1",
                t.name
            )));
        }
        if t.spf == 0 {
            return Err(ServeError::BadConfig(format!(
                "tier {:?}: spf must be >= 1",
                t.name
            )));
        }
        if let Some(target) = &t.escalate_to {
            if *target == t.name {
                return Err(ServeError::BadConfig(format!(
                    "tier {:?}: cannot escalate to itself",
                    t.name
                )));
            }
            if !tiers.iter().any(|p| p.name == *target) {
                return Err(ServeError::BadConfig(format!(
                    "tier {:?}: escalate_to names unknown tier {target:?}",
                    t.name
                )));
            }
        }
    }
    Ok(())
}

/// The pooled-vote margin: (top − runner-up) / total, in `[0, 1]`.
///
/// `0.0` when no votes landed or the top two classes tie; `1.0` when
/// every vote went to one class. This is the raw uncertainty signal a
/// [`CalibrationMap`] turns into an empirical correctness probability.
pub fn vote_margin(votes: &[u64]) -> f32 {
    let total: u64 = votes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let (mut top, mut runner) = (0u64, 0u64);
    for &v in votes {
        if v > top {
            runner = top;
            top = v;
        } else if v > runner {
            runner = v;
        }
    }
    (top - runner) as f32 / total as f32
}

/// A monotone map from raw vote margin to calibrated confidence.
///
/// Fitted by [`CalibrationMap::fit`]: margins are bucketed into
/// equal-width bins spanning the observed margin range, each bin's
/// empirical accuracy is computed, and the
/// bin accuracies are made non-decreasing by pool-adjacent-violators
/// (isotonic regression). [`CalibrationMap::apply`] interpolates
/// piecewise-linearly between bin centers, so the map is monotone
/// (non-decreasing) by construction — confidence never inverts the
/// margin ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationMap {
    /// `(margin, confidence)` knots, sorted by margin with non-decreasing
    /// confidence.
    knots: Vec<(f32, f32)>,
}

impl CalibrationMap {
    /// The identity map: confidence == raw margin. Used until a
    /// calibration pass runs.
    pub fn identity() -> Self {
        Self {
            knots: vec![(0.0, 0.0), (1.0, 1.0)],
        }
    }

    /// Fit from `(margin, was_correct)` samples using `bins` equal-width
    /// buckets over the **observed margin range** plus
    /// pool-adjacent-violators.
    ///
    /// Binning over `[min, max]` of the samples rather than `[0, 1]`
    /// matters in practice: vote margins are normalised by the *total*
    /// vote count across every class, so a well-separated ensemble still
    /// produces margins of a few percent — fixed `[0, 1]` bins would pool
    /// every sample into bin zero and collapse the map to a constant.
    ///
    /// Empty bins are dropped; with no samples at all the identity map is
    /// returned.
    pub fn fit(samples: &[(f32, bool)], bins: usize) -> Self {
        let bins = bins.max(1);
        let (lo, hi) = samples.iter().fold((f32::INFINITY, 0.0f32), |(lo, hi), &(m, _)| {
            let m = m.clamp(0.0, 1.0);
            (lo.min(m), hi.max(m))
        });
        let span = (hi - lo).max(f32::EPSILON);
        let mut hit = vec![0u64; bins];
        let mut seen = vec![0u64; bins];
        let mut margin_sum = vec![0.0f64; bins];
        for &(margin, correct) in samples {
            let rel = (margin.clamp(0.0, 1.0) - lo) / span;
            let b = ((rel * bins as f32) as usize).min(bins - 1);
            seen[b] += 1;
            hit[b] += u64::from(correct);
            margin_sum[b] += f64::from(margin);
        }
        // Non-empty bins -> (mean margin, accuracy, weight) blocks.
        let mut blocks: Vec<(f64, f64, f64)> = (0..bins)
            .filter(|&b| seen[b] > 0)
            .map(|b| {
                (
                    margin_sum[b] / seen[b] as f64,
                    hit[b] as f64 / seen[b] as f64,
                    seen[b] as f64,
                )
            })
            .collect();
        if blocks.is_empty() {
            return Self::identity();
        }
        // Pool adjacent violators: merge any block whose accuracy drops
        // below its predecessor's into a weighted-mean pool.
        let mut pooled: Vec<(f64, f64, f64)> = Vec::with_capacity(blocks.len());
        for block in blocks.drain(..) {
            pooled.push(block);
            while pooled.len() >= 2 {
                let (m2, a2, w2) = pooled[pooled.len() - 1];
                let (m1, a1, w1) = pooled[pooled.len() - 2];
                if a2 >= a1 {
                    break;
                }
                pooled.truncate(pooled.len() - 2);
                let w = w1 + w2;
                pooled.push(((m1 * w1 + m2 * w2) / w, (a1 * w1 + a2 * w2) / w, w));
            }
        }
        #[allow(clippy::cast_possible_truncation)]
        let knots: Vec<(f32, f32)> = pooled
            .into_iter()
            .map(|(m, a, _)| (m as f32, a as f32))
            .collect();
        Self { knots }
    }

    /// Map a raw margin to calibrated confidence (piecewise linear
    /// between knots, clamped flat beyond the first/last knot).
    pub fn apply(&self, margin: f32) -> f32 {
        let m = margin.clamp(0.0, 1.0);
        let first = self.knots[0];
        if m <= first.0 {
            return first.1;
        }
        for w in self.knots.windows(2) {
            let ((m0, c0), (m1, c1)) = (w[0], w[1]);
            if m <= m1 {
                if m1 <= m0 {
                    return c1;
                }
                return c0 + (c1 - c0) * (m - m0) / (m1 - m0);
            }
        }
        self.knots[self.knots.len() - 1].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_basics() {
        assert_eq!(vote_margin(&[]), 0.0);
        assert_eq!(vote_margin(&[0, 0]), 0.0);
        assert_eq!(vote_margin(&[4, 4]), 0.0);
        assert_eq!(vote_margin(&[8, 0]), 1.0);
        assert!((vote_margin(&[6, 2]) - 0.5).abs() < 1e-6);
        assert!((vote_margin(&[5, 3, 2]) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn identity_map_is_identity() {
        let map = CalibrationMap::identity();
        for m in [0.0f32, 0.25, 0.5, 0.99, 1.0] {
            assert!((map.apply(m) - m).abs() < 1e-6);
        }
    }

    #[test]
    fn fit_is_monotone_even_on_inverted_data() {
        // Low margins correct, high margins wrong: PAVA must flatten the
        // inversion into a non-decreasing map.
        let samples: Vec<(f32, bool)> = (0..100)
            .map(|i| {
                let m = i as f32 / 100.0;
                (m, m < 0.5)
            })
            .collect();
        let map = CalibrationMap::fit(&samples, 10);
        let mut prev = -1.0f32;
        for i in 0..=100 {
            let c = map.apply(i as f32 / 100.0);
            assert!(
                c >= prev - 1e-6,
                "confidence must be non-decreasing in margin"
            );
            prev = c;
        }
    }

    #[test]
    fn fit_recovers_binwise_accuracy() {
        // Margins in two clusters with 25% / 75% accuracy.
        let mut samples = Vec::new();
        for i in 0..200 {
            samples.push((0.1, i % 4 == 0));
            samples.push((0.9, i % 4 != 0));
        }
        let map = CalibrationMap::fit(&samples, 10);
        assert!((map.apply(0.1) - 0.25).abs() < 0.02);
        assert!((map.apply(0.9) - 0.75).abs() < 0.02);
        assert!(map.apply(0.0) <= map.apply(1.0));
    }

    #[test]
    fn fit_empty_is_identity() {
        assert_eq!(CalibrationMap::fit(&[], 8), CalibrationMap::identity());
    }

    #[test]
    fn fit_resolves_compressed_margin_ranges() {
        // Real vote margins are normalised by the total vote count, so
        // even a confident ensemble lives in the first few percent of
        // [0, 1]. The fit must bin over the observed range and keep the
        // accuracy gradient instead of pooling everything into one bin.
        // Margins 0..0.05; correctness rate rises with margin.
        let samples: Vec<(f32, bool)> = (0..400)
            .map(|i| {
                let m = 0.05 * (i as f32 / 400.0);
                (m, (i * 7) % 400 < i)
            })
            .collect();
        let low = CalibrationMap::fit(&samples, 8).apply(0.002);
        let high = CalibrationMap::fit(&samples, 8).apply(0.048);
        assert!(
            high > low + 0.1,
            "small-margin samples must still produce a graded map \
             (low {low:.3}, high {high:.3})"
        );
    }

    #[test]
    fn tier_validation_rejects_bad_tables() {
        let ok = vec![
            QualityTier::new("fast", 1, 2)
                .confidence_target(0.8)
                .escalate_to("certain"),
            QualityTier::new("certain", 4, 8),
        ];
        validate_tiers(&ok).expect("valid table");

        let dup = vec![QualityTier::new("a", 1, 2), QualityTier::new("a", 2, 4)];
        assert!(validate_tiers(&dup).is_err());
        let zero = vec![QualityTier::new("a", 0, 2)];
        assert!(validate_tiers(&zero).is_err());
        let zero_spf = vec![QualityTier::new("a", 1, 0)];
        assert!(validate_tiers(&zero_spf).is_err());
        let dangling = vec![QualityTier::new("a", 1, 2).escalate_to("missing")];
        assert!(validate_tiers(&dangling).is_err());
        let self_loop = vec![QualityTier::new("a", 1, 2).escalate_to("a")];
        assert!(validate_tiers(&self_loop).is_err());
        let unnamed = vec![QualityTier::new("", 1, 2)];
        assert!(validate_tiers(&unnamed).is_err());
    }
}

//! Bounded multi-producer/multi-consumer submission queue.
//!
//! A deliberately boring `Mutex<VecDeque> + Condvar` queue: the serving
//! hot path is dominated by chip ticks (tens of microseconds to
//! milliseconds per frame), so lock-free cleverness would buy nothing
//! while costing auditability. What matters here is the *shape*:
//!
//! * bounded capacity, so producers feel backpressure instead of growing
//!   an unbounded buffer;
//! * batched consumption ([`BoundedQueue::pop_batch`]), so a worker
//!   drains several requests per lock acquisition (micro-batch
//!   coalescing);
//! * explicit close semantics, so shutdown can drain in-flight work
//!   without racing new submissions.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (only returned by [`BoundedQueue::try_push`]).
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking MPMC queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("queue lock");
        while st.items.len() >= self.capacity && !st.closed {
            st = self.not_full.wait(st).expect("queue lock");
        }
        if st.closed {
            return Err(PushError::Closed(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Push without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop up to `max` items into `buf` (cleared first), blocking until at
    /// least one item is available. Returns `false` once the queue is
    /// closed *and* fully drained — the consumer's signal to exit.
    pub fn pop_batch(&self, max: usize, buf: &mut Vec<T>) -> bool {
        buf.clear();
        let max = max.max(1);
        let mut st = self.state.lock().expect("queue lock");
        while st.items.is_empty() && !st.closed {
            st = self.not_empty.wait(st).expect("queue lock");
        }
        if st.items.is_empty() {
            return false; // closed and drained
        }
        let take = max.min(st.items.len());
        buf.extend(st.items.drain(..take));
        drop(st);
        // Freed `take` slots; wake blocked producers (and fellow
        // consumers, via notify_all on close only).
        self.not_full.notify_all();
        true
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain what remains and then observe shutdown.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_single_consumer() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("push");
        }
        let mut buf = Vec::new();
        assert!(q.pop_batch(16, &mut buf));
        assert_eq!(buf, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_push_rejects_when_full() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("ok");
        q.try_push(2).expect("ok");
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(7).expect("ok");
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.push(9), Err(PushError::Closed(9)));
        let mut buf = Vec::new();
        assert!(q.pop_batch(4, &mut buf), "queued item survives close");
        assert_eq!(buf, vec![7]);
        assert!(!q.pop_batch(4, &mut buf), "then the queue reports closed");
    }

    #[test]
    fn batch_size_is_capped() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).expect("push");
        }
        let mut buf = Vec::new();
        assert!(q.pop_batch(4, &mut buf));
        assert_eq!(buf.len(), 4);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn blocking_push_resumes_after_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).expect("fill");
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut buf = Vec::new();
        assert!(q.pop_batch(1, &mut buf));
        assert!(producer.join().expect("join"), "producer unblocked");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_unblocks_waiting_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut buf = Vec::new();
            q2.pop_batch(4, &mut buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!consumer.join().expect("join"), "close wakes consumer");
    }
}

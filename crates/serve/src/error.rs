//! Error taxonomy for the serving runtime.

use tn_chip::nscs::DeployError;

/// Everything that can go wrong between [`crate::ServeRuntime::new`] and a
/// completed request.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm, so future
/// variants are not a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The network spec could not be deployed onto replica chips.
    Deploy(DeployError),
    /// The [`crate::ServeConfig`] is internally inconsistent (reported by
    /// [`crate::ServeConfigBuilder::build`], naming the offending field).
    BadConfig(String),
    /// The submission queue is full and the runtime is configured with
    /// [`crate::Backpressure::Reject`].
    QueueFull,
    /// The runtime is shutting down: either a submission was refused, or a
    /// request was accepted but the runtime went away before a worker
    /// served it (the waiter is woken with this instead of hanging).
    ShuttingDown,
    /// The backend has no healthy capacity for this request right now —
    /// e.g. a fleet router whose shards are all dead or stale, or a
    /// request whose re-dispatch budget ran out after connection losses.
    /// Distinct from [`ServeError::ShuttingDown`]: nobody asked the
    /// backend to stop, it just cannot serve; retrying later may
    /// succeed once capacity recovers.
    Unavailable(String),
    /// [`crate::RequestHandle::wait_timeout`] expired before the request
    /// completed. The request is still in flight; waiting again is fine.
    WaitTimeout,
    /// The request's input vector does not match the deployed network.
    BadInput {
        /// Channels the deployed network expects.
        expected: usize,
        /// Channels the request supplied.
        got: usize,
    },
    /// An input value fell outside the normalized `[0, 1]` range.
    InputOutOfRange {
        /// Index of the offending channel.
        channel: usize,
        /// The offending value.
        value: f32,
    },
    /// The request named an spf class the runtime does not serve (see
    /// [`crate::control::ControllerConfig::spf_classes`]).
    UnknownClass {
        /// The class the request asked for.
        class: usize,
        /// Classes the runtime serves (`0 .. classes`).
        classes: usize,
    },
    /// The request named a tenant model the runtime does not serve (see
    /// [`crate::ServeRuntime::submit_model`]).
    UnknownModel {
        /// The model the request asked for.
        model: usize,
        /// Models the runtime serves (`0 .. models`).
        models: usize,
    },
    /// The request named a quality tier the runtime does not serve (see
    /// [`crate::QualityTier`]).
    UnknownQuality {
        /// The tier name the request asked for.
        quality: String,
        /// Tier names the runtime serves.
        tiers: Vec<String>,
    },
    /// A set of deployments could not be packed onto one chip
    /// ([`crate::ServeRuntime::new_packed`]); carries the
    /// [`tn_chip::pack::PackError`] rendering.
    Pack(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deploy(e) => write!(f, "replica deployment failed: {e}"),
            Self::BadConfig(msg) => write!(f, "invalid serve config: {msg}"),
            Self::QueueFull => write!(f, "submission queue full (backpressure: reject)"),
            Self::ShuttingDown => write!(f, "runtime is shutting down"),
            Self::Unavailable(msg) => write!(f, "backend unavailable: {msg}"),
            Self::WaitTimeout => write!(f, "timed out waiting for the request to complete"),
            Self::BadInput { expected, got } => {
                write!(f, "input width mismatch: expected {expected} channels, got {got}")
            }
            Self::InputOutOfRange { channel, value } => {
                write!(
                    f,
                    "input channel {channel} = {value} outside normalized [0, 1]"
                )
            }
            Self::UnknownClass { class, classes } => {
                write!(
                    f,
                    "unknown request class {class}: this runtime serves classes 0..{classes}"
                )
            }
            Self::UnknownModel { model, models } => {
                write!(
                    f,
                    "unknown model {model}: this runtime serves models 0..{models}"
                )
            }
            Self::UnknownQuality { quality, tiers } => {
                write!(
                    f,
                    "unknown quality tier {quality:?}: this runtime serves {tiers:?}"
                )
            }
            Self::Pack(msg) => write!(f, "multi-tenant packing failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Deploy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeployError> for ServeError {
    fn from(e: DeployError) -> Self {
        Self::Deploy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::BadInput {
            expected: 784,
            got: 10,
        };
        let text = e.to_string();
        assert!(text.contains("784") && text.contains("10"), "{text}");
        assert!(ServeError::QueueFull.to_string().contains("full"));
        let e = ServeError::Unavailable("no healthy shard".into());
        assert!(e.to_string().contains("unavailable") && e.to_string().contains("shard"));
        let e = ServeError::UnknownClass { class: 3, classes: 2 };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        let e = ServeError::UnknownQuality {
            quality: "turbo".into(),
            tiers: vec!["fast".into(), "certain".into()],
        };
        assert!(e.to_string().contains("turbo") && e.to_string().contains("fast"));
    }
}

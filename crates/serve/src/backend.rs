//! The serving-backend abstraction: anything a front-end can submit to.
//!
//! `tn-gateway` originally bound straight to a [`ServeRuntime`]. A
//! scale-out fleet needs the same HTTP front-end bound to a *router*
//! over many shard runtimes instead — without a `tn-gateway →
//! tn-fleet` dependency (the fleet depends on `tn-serve` too, and the
//! gateway must stay usable solo). [`ServeBackend`] is the seam: the
//! exact submission + introspection surface the gateway consumes,
//! implemented here by [`ServeRuntime`] and in `tn-fleet` by its
//! `FleetRouter`.
//!
//! The trait is object-safe on purpose (front-ends hold
//! `Arc<dyn ServeBackend>`), which is why submission takes a concrete
//! [`SubmitRequest`] rather than `impl Into<SubmitRequest>`.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::handle::RequestHandle;
use crate::metrics::{MetricsSnapshot, QueueStats};
use crate::request::SubmitRequest;
use crate::runtime::ServeRuntime;

/// What a serving front-end needs from whatever answers its requests:
/// non-blocking-ish submission, admission gauges, counters, and enough
/// model/config introspection to render a config endpoint.
pub trait ServeBackend: Send + Sync + std::fmt::Debug {
    /// Submit one request; returns an awaitable [`RequestHandle`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ServeRuntime::submit`]: validation failures,
    /// [`ServeError::QueueFull`] under rejecting backpressure,
    /// [`ServeError::ShuttingDown`] once the backend is draining (for a
    /// fleet: when no healthy shard remains).
    fn submit_request(&self, request: SubmitRequest) -> Result<RequestHandle, ServeError>;

    /// Live queue-depth / in-flight admission gauge (fleet backends
    /// aggregate across shards).
    fn queue_stats(&self) -> QueueStats;

    /// Point-in-time counters (fleet backends aggregate across shards).
    fn metrics(&self) -> MetricsSnapshot;

    /// Input channels each request must provide (tenant model 0).
    fn n_inputs(&self) -> usize;

    /// Classes voted on per request (tenant model 0).
    fn n_classes(&self) -> usize;

    /// Number of tenant models served.
    fn models(&self) -> usize;

    /// Input channels tenant `model` expects, `None` if out of range.
    fn model_n_inputs(&self, model: usize) -> Option<usize>;

    /// Classes tenant `model` votes on, `None` if out of range.
    fn model_n_classes(&self, model: usize) -> Option<usize>;

    /// Whether several tenants share one packed chip.
    fn is_packed(&self) -> bool;

    /// Replica count currently in force.
    fn replicas(&self) -> usize;

    /// Kernel fusion width currently in force.
    fn kernel_batch(&self) -> usize;

    /// Live ticks-per-frame for each request class (≥ 1 entry).
    fn spf_per_class(&self) -> Vec<usize>;

    /// Names of the quality tiers served, in config order.
    fn tier_names(&self) -> Vec<String>;

    /// The serving configuration (initial knob values; the live values
    /// come from [`ServeBackend::replicas`] etc.).
    fn config(&self) -> &ServeConfig;
}

impl ServeBackend for ServeRuntime {
    fn submit_request(&self, request: SubmitRequest) -> Result<RequestHandle, ServeError> {
        self.submit(request)
    }

    fn queue_stats(&self) -> QueueStats {
        ServeRuntime::queue_stats(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        ServeRuntime::metrics(self)
    }

    fn n_inputs(&self) -> usize {
        ServeRuntime::n_inputs(self)
    }

    fn n_classes(&self) -> usize {
        ServeRuntime::n_classes(self)
    }

    fn models(&self) -> usize {
        ServeRuntime::models(self)
    }

    fn model_n_inputs(&self, model: usize) -> Option<usize> {
        ServeRuntime::model_n_inputs(self, model)
    }

    fn model_n_classes(&self, model: usize) -> Option<usize> {
        ServeRuntime::model_n_classes(self, model)
    }

    fn is_packed(&self) -> bool {
        ServeRuntime::is_packed(self)
    }

    fn replicas(&self) -> usize {
        ServeRuntime::replicas(self)
    }

    fn kernel_batch(&self) -> usize {
        ServeRuntime::kernel_batch(self)
    }

    fn spf_per_class(&self) -> Vec<usize> {
        ServeRuntime::spf_per_class(self)
    }

    fn tier_names(&self) -> Vec<String> {
        ServeRuntime::tier_names(self)
    }

    fn config(&self) -> &ServeConfig {
        ServeRuntime::config(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tn_chip::nscs::{CoreDeploySpec, InputSource, NetworkDeploySpec};

    /// 2-input, 2-class, single-core spec with deterministic ±1 weights.
    fn xor_free_spec() -> NetworkDeploySpec {
        NetworkDeploySpec {
            cores: vec![CoreDeploySpec {
                layer: 0,
                weights: vec![1.0, -1.0, -1.0, 1.0],
                n_axons: 2,
                n_neurons: 2,
                biases: vec![-0.5, -0.5],
                axon_sources: vec![InputSource::External(0), InputSource::External(1)],
            }],
            n_inputs: 2,
            n_classes: 2,
            output_taps: vec![(0, 0, 0), (0, 1, 1)],
        }
    }

    #[test]
    fn runtime_serves_through_the_trait_object() {
        let rt = ServeRuntime::new(&xor_free_spec(), ServeConfig::new(7)).expect("deploy");
        let direct = rt.classify(vec![1.0, 0.0]).expect("classify");
        let backend: Arc<dyn ServeBackend> =
            Arc::new(ServeRuntime::new(&xor_free_spec(), ServeConfig::new(7)).expect("deploy"));
        let via_trait = backend
            .submit_request(SubmitRequest::new(vec![1.0, 0.0]))
            .expect("submit")
            .wait()
            .expect("serve");
        // Same (seed, seq) through either surface: bit-identical.
        assert_eq!(via_trait.predicted, direct.predicted);
        assert_eq!(via_trait.votes, direct.votes);
        assert_eq!(backend.n_inputs(), 2);
        assert_eq!(backend.n_classes(), 2);
        assert_eq!(backend.models(), 1);
        assert!(!backend.is_packed());
        assert_eq!(backend.config().seed, 7);
        assert!(backend.queue_stats().capacity > 0);
    }
}

//! Protein secondary-structure prediction (the paper's RS130 benchmark,
//! test benches 4-5): a life-science workload on neuromorphic hardware.
//!
//! Run with: `cargo run --release --example protein_structure`

use truenorth::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale {
        n_train: 2000,
        n_test: 500,
        epochs: 8,
        seeds: 1,
        threads: 2,
    };

    // Test bench 4: 357 one-hot window features reshaped to a 19×19 frame,
    // stride 3 → four neuro-synaptic cores, three classes.
    let bench = TestBench::new(4, 17);
    let data = bench.load_data(&scale, 17);
    println!(
        "RS130-synth: {} train / {} test windows, {} features each",
        data.train_y.len(),
        data.test_y.len(),
        tn_data::rs130_synth::N_FEATURES,
    );

    let tea = train_model(&bench, &data, Penalty::None, &scale, 17)?;
    let biased = train_model(&bench, &data, bench.biasing_penalty(), &scale, 17)?;
    println!(
        "float accuracy: tea {:.4}, biased {:.4} (paper's bench-4 Caffe accuracy: 0.6909)",
        tea.float_accuracy, biased.float_accuracy
    );

    let classes = ["alpha-helix", "beta-sheet", "coil"];
    for m in [&tea, &biased] {
        let acc = evaluate_accuracy(&m.spec, &data.test_x, &data.test_y, 2, 2, 23)?;
        println!(
            "deployed ({}), 2 copies x 2 spf: {:.4}",
            m.penalty.name(),
            acc
        );
    }

    // Classify one window end to end and name the class.
    let mut dep = Deployment::build(&biased.spec, 1, 23)?;
    let votes = dep.run_frame(data.test_x.row(0), 4, 1);
    let mut scores = [0u64; 3];
    for tick in &votes {
        for (c, s) in scores.iter_mut().enumerate() {
            *s += tick[c];
        }
    }
    let pred = (0..3).max_by_key(|&c| scores[c]).unwrap_or(0);
    println!(
        "first test window: predicted {} (truth {}), votes {scores:?}",
        classes[pred], classes[data.test_y[0]]
    );
    Ok(())
}

//! Serve a trained model over TCP with `tn-gateway` and drive it the way
//! any external client would — bare `std::net::TcpStream`s, no HTTP
//! library on either side:
//!
//! 1. train test bench 1 (tiny scale) and bind a gateway on an ephemeral
//!    port;
//! 2. hit `/healthz`, `/v1/config`, and `POST /v1/classify` over
//!    keep-alive HTTP/1.1;
//! 3. load it from several concurrent pipelining clients and report
//!    over-the-wire accuracy and throughput;
//! 4. speak the line-JSON mode on the same port;
//! 5. poll `/v1/snapshot` for the live telemetry trail;
//! 6. saturate a deliberately tiny queue to show `503` + `Retry-After`
//!    load shedding;
//! 7. drain gracefully and print the final metrics.
//!
//! Run with: `cargo run --release --example gateway_demo`
//!
//! Pass `--telemetry path.jsonl` to export the `tn-telemetry/1` snapshot
//! trail (validate with `snapshot_check`). Knobs: `TN_GATEWAY_CLIENTS`
//! (default 4), `TN_GATEWAY_REQUESTS` per client (default 48), plus the
//! usual `TN_TRAIN`/`TN_TEST`/`TN_EPOCHS`.

use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tn_telemetry::{JsonLinesSink, MetricsSink, NullSink};
use truenorth::prelude::*;

const SEED: u64 = 61;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A pipelining HTTP/1.1 client over one bare `TcpStream`.
struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
            buf: Vec::new(),
        })
    }

    fn send(&mut self, request: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(request)
    }

    /// Read the next Content-Length-framed response: (status, body).
    fn recv(&mut self) -> std::io::Result<(u16, String)> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
                let status: u16 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status code");
                let len: usize = head
                    .lines()
                    .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
                    .and_then(|v| v.trim().parse().ok())
                    .expect("Content-Length");
                if self.buf.len() >= head_end + 4 + len {
                    let body =
                        String::from_utf8_lossy(&self.buf[head_end + 4..head_end + 4 + len])
                            .into_owned();
                    self.buf.drain(..head_end + 4 + len);
                    return Ok((status, body));
                }
            }
            let got = self.stream.read(&mut chunk)?;
            assert!(got > 0, "server closed mid-response");
            self.buf.extend_from_slice(&chunk[..got]);
        }
    }
}

fn classify_request(frame: &[f32]) -> Vec<u8> {
    let nums: Vec<String> = frame.iter().map(|v| v.to_string()).collect();
    let body = format!("{{\"frame\":[{}]}}", nums.join(","));
    format!(
        "POST /v1/classify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// Pull `"field":<digits>` out of a flat JSON body (the demo avoids a
/// full parser; the integration tests do strict parsing).
fn json_usize(body: &str, field: &str) -> Option<usize> {
    let at = body.find(&format!("\"{field}\":"))? + field.len() + 3;
    let digits: String = body[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// One client worker: `n` classifies pipelined in bursts of 16.
fn run_client(
    addr: SocketAddr,
    data: &BenchData,
    offset: usize,
    n: usize,
) -> std::io::Result<(usize, usize)> {
    let mut client = HttpClient::connect(addr)?;
    let n_test = data.test_y.len();
    let (mut ok, mut correct) = (0usize, 0usize);
    let rows: Vec<usize> = (0..n).map(|i| (offset + i) % n_test).collect();
    for burst in rows.chunks(16) {
        for &row in burst {
            client.send(&classify_request(data.test_x.row(row)))?;
        }
        for &row in burst {
            let (status, body) = client.recv()?;
            if status == 200 {
                ok += 1;
                if json_usize(&body, "predicted") == Some(data.test_y[row]) {
                    correct += 1;
                }
            }
        }
    }
    Ok((ok, correct))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out: Option<String> = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned();
    let scale = RunScale {
        n_train: env_usize("TN_TRAIN", 600),
        n_test: env_usize("TN_TEST", 120),
        epochs: env_usize("TN_EPOCHS", 2),
        seeds: 1,
        threads: 2,
    };
    let n_clients = env_usize("TN_GATEWAY_CLIENTS", 4).max(1);
    let per_client = env_usize("TN_GATEWAY_REQUESTS", 48).max(1);

    println!("== training test bench 1 (probability-biased) ==");
    let bench = TestBench::new(1, SEED);
    let data = Arc::new(bench.load_data(&scale, SEED));
    let model = train_model(&bench, &data, bench.biasing_penalty(), &scale, SEED)?;
    println!("float accuracy {:.4}", model.float_accuracy);

    // -- bind ------------------------------------------------------------
    let sink: Arc<dyn MetricsSink> = match &telemetry_out {
        Some(path) => Arc::new(JsonLinesSink::new(File::create(path)?)),
        None => Arc::new(NullSink),
    };
    let serve_cfg = ServeConfig::builder(SEED)
        .replicas(2)
        .workers(2)
        .queue_capacity(256)
        .batch_max(16)
        .kernel_batch(8)
        .telemetry(TelemetryConfig {
            interval: Duration::from_millis(25),
            ..TelemetryConfig::default()
        })
        .build()?;
    let gw = gateway_network_with_sink(
        "127.0.0.1:0",
        &model.network,
        serve_cfg,
        GatewayConfig::default(),
        sink,
    )?;
    let addr = gw.local_addr();
    println!("\n== gateway listening on {addr} ==");

    // -- the wire API, one endpoint at a time ----------------------------
    let mut probe = HttpClient::connect(addr)?;
    probe.send(b"GET /healthz HTTP/1.1\r\n\r\n")?;
    let (status, body) = probe.recv()?;
    println!("GET /healthz        -> {status} {body}");
    probe.send(b"GET /v1/config HTTP/1.1\r\n\r\n")?;
    let (status, body) = probe.recv()?;
    println!("GET /v1/config      -> {status} {body}");
    probe.send(&classify_request(data.test_x.row(0)))?;
    let (status, body) = probe.recv()?;
    println!("POST /v1/classify   -> {status} {body}");

    // -- concurrent pipelined load ---------------------------------------
    println!("\n== {n_clients} clients x {per_client} pipelined requests ==");
    let t0 = Instant::now();
    let workers: Vec<_> = (0..n_clients)
        .map(|c| {
            let data = Arc::clone(&data);
            std::thread::spawn(move || run_client(addr, &data, c * per_client, per_client))
        })
        .collect();
    let (mut ok, mut correct) = (0usize, 0usize);
    for w in workers {
        let (o, c) = w.join().expect("client thread")?;
        ok += o;
        correct += c;
    }
    let wall = t0.elapsed();
    let total = n_clients * per_client;
    assert_eq!(ok, total, "every request must be served (queue is deep)");
    println!(
        "{total} requests in {wall:.2?} ({:.1} req/s over the wire), accuracy {:.4}",
        total as f64 / wall.as_secs_f64(),
        correct as f32 / total as f32,
    );

    // -- the line-JSON mode on the same port -----------------------------
    let line_stream = TcpStream::connect(addr)?;
    let mut line_reader = BufReader::new(line_stream.try_clone()?);
    let mut line_writer = line_stream;
    let nums: Vec<String> = data.test_x.row(1).iter().map(|v| v.to_string()).collect();
    writeln!(line_writer, "{{\"frame\":[{}]}}", nums.join(","))?;
    writeln!(line_writer, "{{\"op\":\"health\"}}")?;
    for label in ["classify", "health"] {
        let mut line = String::new();
        line_reader.read_line(&mut line)?;
        println!("line-JSON {label:<9} -> {}", line.trim());
    }
    drop(line_writer);

    // -- live telemetry over the wire ------------------------------------
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        probe.send(b"GET /v1/snapshot HTTP/1.1\r\n\r\n")?;
        let (status, body) = probe.recv()?;
        if status == 200 {
            let trimmed = if body.len() > 120 { &body[..120] } else { &body };
            println!("\nGET /v1/snapshot    -> {status} {trimmed}...");
            break;
        }
        assert!(Instant::now() < deadline, "telemetry snapshot never exported");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(probe);

    // -- graceful drain ---------------------------------------------------
    let snap = gw.shutdown();
    println!(
        "drained: {} completed, {} rejected, p99 {}us, {:.3e} J/frame",
        snap.completed,
        snap.rejected,
        snap.p99_latency.as_micros(),
        snap.joules_per_frame(),
    );
    assert!(snap.completed >= total as u64, "drain lost admitted requests");

    // -- forced saturation: load shedding in action ----------------------
    println!("\n== saturation demo: capacity-1 queue, slow frames ==");
    let slow_cfg = ServeConfig::builder(SEED)
        .workers(1)
        .spf(2048)
        .queue_capacity(1)
        .batch_max(1)
        .build()?;
    let gw = gateway_network("127.0.0.1:0", &model.network, slow_cfg, GatewayConfig::default())?;
    let mut client = HttpClient::connect(gw.local_addr())?;
    let burst = 16usize;
    for _ in 0..burst {
        client.send(&classify_request(data.test_x.row(0)))?;
    }
    let (mut served, mut shed) = (0usize, 0usize);
    for _ in 0..burst {
        match client.recv()?.0 {
            200 => served += 1,
            503 => shed += 1,
            other => panic!("unexpected status {other} under saturation"),
        }
    }
    drop(client);
    let snap = gw.shutdown();
    println!(
        "burst of {burst}: {served} served, {shed} shed with 503 + Retry-After \
         (runtime counted {} rejected)",
        snap.rejected
    );
    assert!(shed > 0, "a capacity-1 queue must shed a 16-deep burst");
    assert_eq!(served + shed, burst);

    if let Some(path) = telemetry_out {
        println!("\ntelemetry trail written to {path}");
    }
    Ok(())
}

//! Handwritten digit recognition on the simulated TrueNorth chip — the
//! workload of the paper's Fig. 3 — with a per-class breakdown and the
//! accuracy/cores/speed trade-off spelled out.
//!
//! Run with: `cargo run --release --example digit_recognition`

use tn_chip::nscs::ConnectivityMode;
use tn_learn::metrics::ConfusionMatrix;
use truenorth::eval::{evaluate_grid, EvalConfig};
use truenorth::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale {
        n_train: 2000,
        n_test: 400,
        epochs: 8,
        seeds: 1,
        threads: 2,
    };
    let bench = TestBench::new(1, 3);
    let data = bench.load_data(&scale, 3);
    let model = train_model(&bench, &data, bench.biasing_penalty(), &scale, 3)?;
    println!(
        "trained biased model: float accuracy {:.4}",
        model.float_accuracy
    );

    // Deploy once and look at the decisions a single 4-core network makes.
    let mut dep = Deployment::build(&model.spec, 1, 5)?;
    let mut cm = ConfusionMatrix::new(10);
    for i in 0..data.test_y.len() {
        let votes = dep.run_frame(data.test_x.row(i), 1, i as u64);
        let mut scores = [0u64; 10];
        for tick in &votes {
            for (c, s) in scores.iter_mut().enumerate() {
                *s += tick[c];
            }
        }
        let pred = scores
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .map(|(c, _)| c)
            .unwrap_or(0);
        cm.record(data.test_y[i], pred);
    }
    println!("\nsingle copy, 1 spf on chip:\n{cm}");
    println!("per-digit recall:");
    for d in 0..10 {
        println!("  digit {d}: {:.3}", cm.recall(d));
    }

    // The co-optimization knobs: what duplication buys, and what it costs.
    let grid = evaluate_grid(
        &model.spec,
        &data.test_x,
        &data.test_y,
        &EvalConfig {
            copies: 8,
            spf: 4,
            seed: 11,
            threads: 2,
            connectivity: ConnectivityMode::IndependentPerCopy,
        },
    )?;
    println!("\nduplication trade-off (accuracy / cores / frame latency):");
    for (copies, spf) in [(1usize, 1usize), (1, 4), (4, 1), (8, 4)] {
        let cores = copies * bench.arch.total_cores();
        let latency_ms = spf as f64; // 1 kHz ticks
        println!(
            "  {copies} copies x {spf} spf: accuracy {:.4}, {cores:>3} cores, {latency_ms:.0} ms/frame",
            grid.accuracy(copies, spf)
        );
    }
    Ok(())
}

//! Chip explorer: drive the TrueNorth hardware model directly — cores,
//! crossbars, axon types, LIF neurons, routing, and the energy proxy —
//! without any machine learning on top.
//!
//! Builds a two-core ring oscillator and a stochastic-synapse core, then
//! prints activity statistics and the first-order energy estimate.
//!
//! Run with: `cargo run --release --example chip_explorer`

use tn_chip::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A deterministic two-core loop ------------------------------
    // Core A neuron 0 fires → core B axon 0; core B neuron 0 fires → output.
    let mut chip = TrueNorthChip::new(8, 8, 1);
    chip.set_seed(1);

    let mut strict = NeuronConfig::mcculloch_pitts(0, 0.0, 1);
    strict.threshold = 1; // fire only on real input

    let mut core_a = NeuroSynapticCore::new(0, strict, 1);
    core_a.crossbar_mut().set(0, 0, true);
    let mut core_b = NeuroSynapticCore::new(1, strict, 1);
    core_b.crossbar_mut().set(0, 0, true);

    let a = chip.add_core(core_a, vec![SpikeTarget::Axon { core: 1, axon: 0 }])?;
    let _b = chip.add_core(core_b, vec![SpikeTarget::Output { channel: 0 }])?;
    chip.validate()?;

    chip.inject(a, 0)?;
    chip.run(4);
    println!(
        "pipeline demo: output spikes after 4 ticks = {}",
        chip.output_counts()[0]
    );
    println!("chip stats: {:?}", chip.stats());

    // --- 2. A stochastic-synapse core ----------------------------------
    // 64 axons with probability-0.5 synapses onto one neuron: the neuron's
    // firing rate reflects the Bernoulli crossbar sampling the paper's
    // Eq. (6) describes. Here the sampling is *runtime* stochastic leak;
    // connectivity itself is sampled at deployment in `tn_chip::nscs`.
    let mut chip2 = TrueNorthChip::new(4, 4, 1);
    chip2.set_seed(7);
    let mut cfg = NeuronConfig::mcculloch_pitts(0, 0.0, 1);
    cfg.threshold = 24; // needs 24 of 64 (+1) inputs to fire
    let mut noisy = NeuroSynapticCore::new(0, cfg, 1);
    for axon in 0..64 {
        noisy.crossbar_mut().set(axon, 0, true);
        noisy.set_axon_type(axon, 0);
    }
    let h = chip2.add_core(noisy, vec![SpikeTarget::Output { channel: 0 }])?;

    let mut prng = LfsrPrng::new(0xBEEF);
    let ticks = 1000;
    for _ in 0..ticks {
        for axon in 0..64 {
            if prng.gen_bool(0.4) {
                chip2.inject(h, axon)?;
            }
        }
        chip2.tick();
    }
    let rate = chip2.output_counts()[0] as f64 / ticks as f64;
    println!("\nstochastic core: firing rate {rate:.3} (inputs Bernoulli 0.4, threshold 24/64)");

    // --- 3. Energy proxy ------------------------------------------------
    let report = chip2.energy_report();
    println!(
        "energy proxy: {} synaptic ops in {:.1} s simulated -> {:.2} uJ total, {:.1} uW mean",
        report.synaptic_ops,
        report.seconds,
        report.total_joules() * 1e6,
        report.mean_watts() * 1e6
    );
    println!(
        "(calibration: {} pJ/synaptic-op from the paper's 58 GSOPS @ 145 mW)",
        tn_chip::energy::JOULES_PER_SYNOP * 1e12
    );
    Ok(())
}

//! Co-design sweep: given an accuracy target, find the cheapest deployment
//! (copies × spf) for Tea vs biased models — the engineering question the
//! paper's co-optimization answers.
//!
//! Run with: `cargo run --release --example codesign_sweep`

use tn_chip::nscs::ConnectivityMode;
use truenorth::eval::{evaluate_grid, EvalConfig};
use truenorth::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale {
        n_train: 2000,
        n_test: 400,
        epochs: 8,
        seeds: 1,
        threads: 2,
    };
    let bench = TestBench::new(1, 11);
    let data = bench.load_data(&scale, 11);
    let tea = train_model(&bench, &data, Penalty::None, &scale, 11)?;
    let biased = train_model(&bench, &data, bench.biasing_penalty(), &scale, 11)?;

    let grid_of = |m: &TrainedModel| {
        evaluate_grid(
            &m.spec,
            &data.test_x,
            &data.test_y,
            &EvalConfig {
                copies: 8,
                spf: 4,
                seed: 31,
                threads: 2,
                connectivity: ConnectivityMode::IndependentPerCopy,
            },
        )
    };
    let tea_grid = grid_of(&tea)?;
    let biased_grid = grid_of(&biased)?;
    let cores_per_copy = bench.arch.total_cores();

    println!("cheapest deployment meeting each accuracy target");
    println!(
        "{:>8} | {:>24} | {:>24}",
        "target", "tea (cores, ms/frame)", "biased (cores, ms/frame)"
    );
    for target in [0.80_f32, 0.85, 0.88, 0.90] {
        let pick = |grid: &GridAccuracy| -> Option<(usize, usize)> {
            // Cheapest = fewest cores, then fewest spf.
            let mut best: Option<(usize, usize)> = None;
            for copies in 1..=8 {
                for spf in 1..=4 {
                    if grid.accuracy(copies, spf) >= target {
                        let cand = (copies, spf);
                        best = match best {
                            None => Some(cand),
                            Some(b) if (cand.0, cand.1) < b => Some(cand),
                            keep => keep,
                        };
                    }
                }
            }
            best
        };
        let show = |choice: Option<(usize, usize)>| match choice {
            Some((c, s)) => format!("{:>3} cores, {s} ms", c * cores_per_copy),
            None => "unreachable".to_string(),
        };
        println!(
            "{:>7.0}% | {:>24} | {:>24}",
            target * 100.0,
            show(pick(&tea_grid)),
            show(pick(&biased_grid))
        );
    }
    println!(
        "\nfloat ceilings: tea {:.4}, biased {:.4}",
        tea.float_accuracy, biased.float_accuracy
    );
    Ok(())
}

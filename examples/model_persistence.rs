//! Train once, save the model, reload it later, and deploy — the normal
//! lifecycle of a production model, demonstrating `tn_learn::persist`.
//!
//! Run with: `cargo run --release --example model_persistence`

use std::fs::File;
use tn_learn::persist::{load_network, save_network};
use truenorth::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale {
        n_train: 1200,
        n_test: 300,
        epochs: 5,
        seeds: 1,
        threads: 2,
    };
    let bench = TestBench::new(1, 77);
    let data = bench.load_data(&scale, 77);

    // Train and persist.
    let model = train_model(&bench, &data, bench.biasing_penalty(), &scale, 77)?;
    let path = std::env::temp_dir().join("truenorth_fig3_biased.tnm");
    save_network(&model.network, File::create(&path)?)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("saved trained model to {} ({bytes} bytes)", path.display());

    // Reload and verify it is bit-identical in behaviour.
    let restored = load_network(File::open(&path)?)?;
    assert_eq!(restored, model.network, "roundtrip must be exact");
    println!(
        "restored model float accuracy: {:.4} (original {:.4})",
        restored.accuracy(&data.test_x, &data.test_y),
        model.float_accuracy
    );

    // Deploy the restored model to the chip.
    let spec = truenorth::deploy::extract_spec(&restored)?;
    let acc = evaluate_accuracy(&spec, &data.test_x, &data.test_y, 2, 2, 5)?;
    println!("restored model deployed (2 copies, 2 spf): {acc:.4}");

    std::fs::remove_file(&path).ok();
    Ok(())
}

//! Load-generate against the `tn-serve` runtime: train test bench 1 with
//! Tea and with probability-biased learning, persist the models, reload
//! them from disk, and serve ≥ 1000 synthetic-MNIST requests per
//! (model × replica-count × kernel-batch) cell, reporting throughput,
//! latency percentiles, replica vote agreement, energy per frame — and
//! the paper's co-optimization claim live: the biased model reaches the
//! Tea model's accuracy with no more replicas. The kernel-batch sweep
//! shows the batch-first redesign paying off: fusing queued requests
//! into lockstep kernel lanes raises req/s without changing one vote.
//!
//! Run with: `cargo run --release --example serve_throughput`
//!
//! Pass `--telemetry [path.jsonl]` to finish with an adaptive-control
//! run: a runtime with the [`Controller`] and telemetry enabled serves a
//! saturating burst while exporting `tn-telemetry/1` JSON-lines
//! snapshots (default path `tn_serve_telemetry.jsonl`; validate with the
//! `snapshot_check` bin from `tn-telemetry`).
//!
//! Knobs: `TN_SERVE_REQUESTS` (default 1000), `TN_SERVE_WORKERS` (2),
//! `TN_SERVE_SPF` (8), `TN_SERVE_JSON` (write a machine-readable summary
//! to this path), plus the usual `TN_TRAIN`/`TN_TEST`/`TN_EPOCHS`.

use std::fs::File;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tn_learn::persist::save_network;
use tn_telemetry::{JsonLinesSink, MetricsSink};
use truenorth::prelude::*;

const SEED: u64 = 77;
const REPLICA_SWEEP: [usize; 3] = [1, 2, 4];
const KERNEL_BATCH_SWEEP: [usize; 2] = [1, 8];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One (model × replicas × kernel_batch) measurement.
struct Cell {
    model: &'static str,
    replicas: usize,
    kernel_batch: usize,
    requests: u64,
    accuracy: f32,
    mean_agreement: f32,
    throughput_rps: f64,
    p50_us: u128,
    p90_us: u128,
    p99_us: u128,
    joules_per_frame: f64,
}

/// One (replica count, kernel fusion width) point in the sweep grid.
#[derive(Clone, Copy)]
struct SweepPoint {
    replicas: usize,
    kernel_batch: usize,
}

fn serve_cell(
    model: &'static str,
    path: &std::path::Path,
    point: SweepPoint,
    workers: usize,
    spf: usize,
    n_requests: usize,
    data: &BenchData,
) -> Result<Cell, Box<dyn std::error::Error>> {
    let SweepPoint {
        replicas,
        kernel_batch,
    } = point;
    // The production path: deploy a *persisted* model from disk.
    let rt = serve_persisted(
        path,
        ServeConfig::builder(SEED)
            .replicas(replicas)
            .workers(workers)
            .spf(spf)
            .queue_capacity(512)
            .batch_max(32)
            .kernel_batch(kernel_batch)
            .build()?,
    )?;
    let n_test = data.test_y.len();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_requests)
        .map(|i| rt.submit(data.test_x.row(i % n_test).to_vec()))
        .collect::<Result<_, _>>()?;
    let mut correct = 0u64;
    let mut agreement_sum = 0.0f32;
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait()?;
        agreement_sum += r.agreement;
        if r.predicted == data.test_y[i % n_test] {
            correct += 1;
        }
    }
    let wall = t0.elapsed();
    let snap = rt.shutdown();
    assert_eq!(snap.completed, n_requests as u64, "drain served everything");
    Ok(Cell {
        model,
        replicas,
        kernel_batch,
        requests: snap.completed,
        accuracy: correct as f32 / n_requests as f32,
        mean_agreement: agreement_sum / n_requests as f32,
        throughput_rps: n_requests as f64 / wall.as_secs_f64(),
        p50_us: snap.p50_latency.as_micros(),
        p90_us: snap.p90_latency.as_micros(),
        p99_us: snap.p99_latency.as_micros(),
        joules_per_frame: snap.joules_per_frame(),
    })
}

/// Smallest replica count in the sweep reaching `target` accuracy.
fn replicas_needed(cells: &[Cell], model: &str, target: f32) -> Option<usize> {
    cells
        .iter()
        .filter(|c| c.model == model && c.accuracy >= target)
        .map(|c| c.replicas)
        .min()
}

/// Saturate a controller-enabled runtime and export telemetry snapshots.
///
/// The burst keeps the queue deep, so the controller widens the kernel
/// fusion toward the configured max; the replica axis follows the live
/// agreement metric within its bounds. Both live values are printed so
/// the adaptation is visible alongside the JSONL snapshot trail.
fn adaptive_run(
    net: &Network,
    data: &BenchData,
    out_path: &str,
    workers: usize,
    spf: usize,
    n_requests: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== adaptive-control run ({n_requests} requests, telemetry -> {out_path}) ==");
    let sink = Arc::new(JsonLinesSink::new(File::create(out_path)?));
    let cfg = ServeConfig::builder(SEED)
        .replicas(2)
        .workers(workers)
        .spf(spf)
        .queue_capacity(512)
        .batch_max(32)
        .kernel_batch(16) // doubles as the adaptive ceiling
        .controller(ControllerConfig {
            sample_interval: Duration::from_millis(5),
            cooldown: Duration::from_millis(100),
            min_replicas: 1,
            max_replicas: 4,
            ..ControllerConfig::default()
        })
        .telemetry(TelemetryConfig {
            interval: Duration::from_millis(20),
            ..TelemetryConfig::default()
        })
        .build()?;
    let rt = serve_network_with_sink(net, cfg, sink as Arc<dyn MetricsSink>)?;
    let n_test = data.test_y.len();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_requests)
        .map(|i| rt.submit(data.test_x.row(i % n_test).to_vec()))
        .collect::<Result<_, _>>()?;
    for h in handles {
        h.wait()?;
    }
    let wall = t0.elapsed();
    println!(
        "served {} requests in {:.2?} ({:.1} req/s); live kernel_batch {} (start 16), live replicas {} (start 2)",
        n_requests,
        wall,
        n_requests as f64 / wall.as_secs_f64(),
        rt.kernel_batch(),
        rt.replicas(),
    );
    let snap = rt.shutdown();
    println!(
        "final mean agreement {:.3}; snapshots written to {out_path}",
        snap.mean_agreement
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--telemetry [path.jsonl]` enables the adaptive-control run.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out: Option<String> = args.iter().position(|a| a == "--telemetry").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "tn_serve_telemetry.jsonl".into())
    });
    let scale = RunScale {
        n_train: env_usize("TN_TRAIN", 1200),
        n_test: env_usize("TN_TEST", 300),
        epochs: env_usize("TN_EPOCHS", 5),
        seeds: 1,
        threads: 2,
    };
    let n_requests = env_usize("TN_SERVE_REQUESTS", 1000);
    let workers = env_usize("TN_SERVE_WORKERS", 2).max(2);
    let spf = env_usize("TN_SERVE_SPF", 8);

    println!("== training test bench 1 (Tea vs probability-biased) ==");
    let bench = TestBench::new(1, SEED);
    let data = bench.load_data(&scale, SEED);
    let tea = train_model(&bench, &data, Penalty::None, &scale, SEED)?;
    let biased = train_model(&bench, &data, bench.biasing_penalty(), &scale, SEED)?;
    println!(
        "float accuracy: tea {:.4}, biased {:.4}",
        tea.float_accuracy, biased.float_accuracy
    );

    // Persist both, then serve strictly from disk.
    let dir = std::env::temp_dir();
    let tea_path = dir.join("tn_serve_tea.tnm");
    let biased_path = dir.join("tn_serve_biased.tnm");
    save_network(&tea.network, File::create(&tea_path)?)?;
    save_network(&biased.network, File::create(&biased_path)?)?;

    println!(
        "\n== serving {n_requests} requests per cell ({workers} workers, {spf} spf) ==\n"
    );
    println!(
        "{:<8} {:>8} {:>7} {:>10} {:>10} {:>11} {:>9} {:>9} {:>9} {:>12}",
        "model", "replicas", "kbatch", "accuracy", "agreement", "req/s", "p50 µs", "p90 µs", "p99 µs",
        "J/frame"
    );
    let mut cells = Vec::new();
    for (model, path) in [("tea", &tea_path), ("biased", &biased_path)] {
        for replicas in REPLICA_SWEEP {
            for kernel_batch in KERNEL_BATCH_SWEEP {
                let point = SweepPoint {
                    replicas,
                    kernel_batch,
                };
                let cell = serve_cell(model, path, point, workers, spf, n_requests, &data)?;
                println!(
                    "{:<8} {:>8} {:>7} {:>10.4} {:>10.3} {:>11.1} {:>9} {:>9} {:>9} {:>12.3e}",
                    cell.model,
                    cell.replicas,
                    cell.kernel_batch,
                    cell.accuracy,
                    cell.mean_agreement,
                    cell.throughput_rps,
                    cell.p50_us,
                    cell.p90_us,
                    cell.p99_us,
                    cell.joules_per_frame,
                );
                cells.push(cell);
            }
        }
    }

    // Batch-first payoff: same responses, more of them per second.
    println!();
    for replicas in REPLICA_SWEEP {
        let rps = |kb: usize| {
            cells
                .iter()
                .filter(|c| c.replicas == replicas && c.kernel_batch == kb)
                .map(|c| c.throughput_rps)
                .sum::<f64>()
                / 2.0 // mean over the two models
        };
        let (lone, fused) = (rps(1), rps(KERNEL_BATCH_SWEEP[1]));
        println!(
            "{replicas} replica(s): kernel_batch {} gives {:.2}x req/s over frame-at-a-time",
            KERNEL_BATCH_SWEEP[1],
            fused / lone
        );
    }

    // Co-optimization, served live. Deploying to stochastic crossbars
    // costs each model accuracy relative to its own float baseline;
    // replicas buy that gap back. The paper's claim is that the biasing
    // penalty shrinks per-copy variance, so the biased model recovers its
    // float accuracy with no more replicas than Tea needs for its own.
    const RECOVERY_GAP: f32 = 0.03;
    let needs = |model: &'static str, float_acc: f32| {
        let target = float_acc - RECOVERY_GAP;
        let n = replicas_needed(&cells, model, target);
        println!(
            "{model}: float {float_acc:.4}, recovery target {target:.4} → needs {} replica(s)",
            n.map_or_else(
                || format!("more than {}", REPLICA_SWEEP[REPLICA_SWEEP.len() - 1]),
                |r| r.to_string()
            )
        );
        n.unwrap_or(usize::MAX)
    };
    println!();
    let tea_needs = needs("tea", tea.float_accuracy);
    let biased_needs = needs("biased", biased.float_accuracy);
    if scale.n_train >= 800 {
        assert!(
            biased_needs <= tea_needs,
            "co-optimization violated: biased needs {biased_needs} replicas vs tea {tea_needs}"
        );
        println!("co-optimization holds: biased recovers float accuracy at no extra replica cost");
    } else {
        // Tiny smoke-test scales train models too noisy for the replica
        // comparison to be meaningful; report instead of asserting.
        println!(
            "(skipping co-optimization assert at n_train {} < 800: models too noisy)",
            scale.n_train
        );
    }

    if let Ok(json_path) = std::env::var("TN_SERVE_JSON") {
        let mut rows = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"model\": \"{}\", \"replicas\": {}, \"kernel_batch\": {}, \"requests\": {}, \"accuracy\": {:.4}, \"agreement\": {:.4}, \"req_per_sec\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"joules_per_frame\": {:.4e}}}",
                c.model,
                c.replicas,
                c.kernel_batch,
                c.requests,
                c.accuracy,
                c.mean_agreement,
                c.throughput_rps,
                c.p50_us,
                c.p90_us,
                c.p99_us,
                c.joules_per_frame,
            ));
        }
        let fmt_needs = |n: usize| {
            if n == usize::MAX {
                "null".to_string()
            } else {
                n.to_string()
            }
        };
        let json = format!(
            "{{\n  \"bench\": 1,\n  \"seed\": {SEED},\n  \"spf\": {spf},\n  \"workers\": {workers},\n  \"requests_per_cell\": {n_requests},\n  \"float_accuracy\": {{\"tea\": {:.4}, \"biased\": {:.4}}},\n  \"replicas_needed_for_recovery\": {{\"tea\": {}, \"biased\": {}}},\n  \"cells\": [\n{rows}\n  ]\n}}\n",
            tea.float_accuracy,
            biased.float_accuracy,
            fmt_needs(tea_needs),
            fmt_needs(biased_needs),
        );
        let mut f = File::create(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("wrote {json_path}");
    }

    if let Some(out_path) = telemetry_out {
        adaptive_run(&biased.network, &data, &out_path, workers, spf, n_requests)?;
    }

    std::fs::remove_file(&tea_path).ok();
    std::fs::remove_file(&biased_path).ok();
    Ok(())
}

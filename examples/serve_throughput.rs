//! Load-generate against the `tn-serve` runtime: train test bench 1 with
//! Tea and with probability-biased learning, persist the models, reload
//! them from disk, and serve ≥ 1000 synthetic-MNIST requests per
//! (model × replica-count × kernel-batch) cell, reporting throughput,
//! latency percentiles, replica vote agreement, energy per frame — and
//! the paper's co-optimization claim live: the biased model reaches the
//! Tea model's accuracy with no more replicas. The kernel-batch sweep
//! shows the batch-first redesign paying off: fusing queued requests
//! into lockstep kernel lanes raises req/s without changing one vote.
//! A final pair of cells serves the same stream at a fixed spf and with
//! the controller's per-class spf actuator enabled, showing the energy /
//! throughput win of adapting spf while replica agreement runs high.
//!
//! Run with: `cargo run --release --example serve_throughput`
//!
//! Pass `--telemetry [path.jsonl]` to finish with an adaptive-control
//! run: a runtime with the [`Controller`] and telemetry enabled serves a
//! saturating burst while exporting `tn-telemetry/1` JSON-lines
//! snapshots (default path `tn_serve_telemetry.jsonl`; validate with the
//! `snapshot_check` bin from `tn-telemetry`).
//!
//! Pass `--gateway` to additionally measure the same workload **over
//! the wire**: each gateway cell binds a `tn-gateway` front-end on an
//! ephemeral port and drives it with a pipelining
//! `std::net::TcpStream` client, so its rows include HTTP
//! parse/serialize cost and a real socket round trip. The cells land in
//! the JSON summary under `gateway_cells`.
//!
//! Pass `--packed [trail.jsonl]` to run the **consolidation benchmark**:
//! train a second test bench (bench 5) and serve both models once as two
//! solo runtimes splitting the worker pool, and once consolidated onto a
//! single packed chip serving the full pool
//! ([`truenorth::serving::serve_packed_networks`]). Both cells serve the
//! identical closed-loop workload at equal total worker threads; the
//! packed runtime must win on aggregate req/s while each tenant's
//! accuracy stays *exactly* equal to its solo run (responses are
//! bit-identical by construction). The cells land in the JSON summary
//! under `consolidation_cells`; with a trail path given, the packed run
//! exports per-tenant `serve.model.{id}.*` telemetry there.
//!
//! Pass `--tiers [trail.jsonl]` to run the **quality-tier benchmark**:
//! the biased model serves the identical stream three times through a
//! tiered runtime — once on `fast` (1 replica, spf/4), once on
//! `certain` (4 replicas, full spf), and once on `guarded` (fast's
//! operating point plus a calibrated-confidence floor that escalates
//! low-margin answers onto `certain`). Confidence is calibrated from
//! held-out training frames before serving. The cells land in the JSON
//! summary under `tier_cells`; with a trail path given, a final mixed
//! run (round-robin across the three tiers) exports per-tier
//! `serve.tier.{t}.*` telemetry there (validate with
//! `snapshot_check --tiers 3`).
//!
//! Pass `--fleet [trail.jsonl]` to run the **scale-out benchmark**: the
//! biased model served through an in-process `tn-fleet` — shard workers
//! each hosting a full replica-set runtime behind the framed fleet
//! protocol, one router dispatching over them — once with 1 shard and
//! once with `TN_FLEET_SHARDS` (default 2) shards at equal per-shard
//! workers. The N-shard fleet must win on aggregate req/s while its
//! answer stream stays **bit-identical** to the 1-shard fleet (and to a
//! solo runtime — the router pins every request's fleet-global seq). The
//! cells land in the JSON summary under `fleet_cells`; with a trail path
//! given, the N-shard run's aggregated `tn-telemetry/1` heartbeats are
//! exported there (validate with `snapshot_check`).
//!
//! Knobs: `TN_SERVE_REQUESTS` (default 1000), `TN_SERVE_WORKERS` (2),
//! `TN_SERVE_SPF` (8), `TN_FLEET_SHARDS` (2), `TN_SERVE_JSON` (write a
//! machine-readable summary to this path), plus the usual
//! `TN_TRAIN`/`TN_TEST`/`TN_EPOCHS`.

use std::fs::File;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tn_learn::persist::save_network;
use tn_telemetry::{JsonLinesSink, MetricsSink};
use truenorth::prelude::*;

const SEED: u64 = 77;
const REPLICA_SWEEP: [usize; 3] = [1, 2, 4];
const KERNEL_BATCH_SWEEP: [usize; 2] = [1, 8];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One (model × replicas × kernel_batch) measurement.
struct Cell {
    model: &'static str,
    replicas: usize,
    kernel_batch: usize,
    requests: u64,
    accuracy: f32,
    mean_agreement: f32,
    throughput_rps: f64,
    p50_us: u128,
    p90_us: u128,
    p99_us: u128,
    joules_per_frame: f64,
}

/// One (replica count, kernel fusion width) point in the sweep grid.
#[derive(Clone, Copy)]
struct SweepPoint {
    replicas: usize,
    kernel_batch: usize,
}

fn serve_cell(
    model: &'static str,
    path: &std::path::Path,
    point: SweepPoint,
    workers: usize,
    spf: usize,
    n_requests: usize,
    data: &BenchData,
) -> Result<Cell, Box<dyn std::error::Error>> {
    let SweepPoint {
        replicas,
        kernel_batch,
    } = point;
    // The production path: deploy a *persisted* model from disk.
    let rt = serve_persisted(
        path,
        ServeConfig::builder(SEED)
            .replicas(replicas)
            .workers(workers)
            .spf(spf)
            .queue_capacity(512)
            .batch_max(32)
            .kernel_batch(kernel_batch)
            .build()?,
    )?;
    let n_test = data.test_y.len();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_requests)
        .map(|i| rt.submit(data.test_x.row(i % n_test).to_vec()))
        .collect::<Result<_, _>>()?;
    let mut correct = 0u64;
    let mut agreement_sum = 0.0f32;
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait()?;
        agreement_sum += r.agreement;
        if r.predicted == data.test_y[i % n_test] {
            correct += 1;
        }
    }
    let wall = t0.elapsed();
    let snap = rt.shutdown();
    assert_eq!(snap.completed, n_requests as u64, "drain served everything");
    Ok(Cell {
        model,
        replicas,
        kernel_batch,
        requests: snap.completed,
        accuracy: correct as f32 / n_requests as f32,
        mean_agreement: agreement_sum / n_requests as f32,
        throughput_rps: n_requests as f64 / wall.as_secs_f64(),
        p50_us: snap.p50_latency.as_micros(),
        p90_us: snap.p90_latency.as_micros(),
        p99_us: snap.p99_latency.as_micros(),
        joules_per_frame: snap.joules_per_frame(),
    })
}

/// A pipelining HTTP/1.1 client over one bare `TcpStream`, for the
/// over-the-wire cells.
struct HttpClient {
    stream: std::net::TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        Ok(Self {
            stream: std::net::TcpStream::connect(addr)?,
            buf: Vec::new(),
        })
    }

    /// Read the next Content-Length-framed response: (status, body).
    fn recv(&mut self) -> std::io::Result<(u16, String)> {
        use std::io::Read as _;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
                let status: u16 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status code");
                let len: usize = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::to_string)
                    })
                    .and_then(|v| v.trim().parse().ok())
                    .expect("Content-Length");
                if self.buf.len() >= head_end + 4 + len {
                    let body =
                        String::from_utf8_lossy(&self.buf[head_end + 4..head_end + 4 + len])
                            .into_owned();
                    self.buf.drain(..head_end + 4 + len);
                    return Ok((status, body));
                }
            }
            let got = self.stream.read(&mut chunk)?;
            assert!(got > 0, "gateway closed mid-response");
            self.buf.extend_from_slice(&chunk[..got]);
        }
    }
}

fn classify_request(frame: &[f32]) -> Vec<u8> {
    let nums: Vec<String> = frame.iter().map(|v| v.to_string()).collect();
    let body = format!("{{\"frame\":[{}]}}", nums.join(","));
    format!(
        "POST /v1/classify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// Pull `"field":<digits>` out of a flat JSON response body.
fn json_usize(body: &str, field: &str) -> Option<usize> {
    let at = body.find(&format!("\"{field}\":"))? + field.len() + 3;
    let digits: String = body[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// One over-the-wire measurement: same persisted model, same request
/// stream, but through a `tn-gateway` front-end on an ephemeral port.
fn gateway_cell(
    model: &'static str,
    path: &std::path::Path,
    point: SweepPoint,
    workers: usize,
    spf: usize,
    n_requests: usize,
    data: &BenchData,
) -> Result<Cell, Box<dyn std::error::Error>> {
    use std::io::Write as _;

    let SweepPoint {
        replicas,
        kernel_batch,
    } = point;
    let net = tn_learn::persist::load_network(std::io::BufReader::new(File::open(path)?))?;
    let gw = gateway_network(
        "127.0.0.1:0",
        &net,
        ServeConfig::builder(SEED)
            .replicas(replicas)
            .workers(workers)
            .spf(spf)
            .queue_capacity(512)
            .batch_max(32)
            .kernel_batch(kernel_batch)
            .build()?,
        GatewayConfig::default(),
    )?;
    let mut client = HttpClient::connect(gw.local_addr())?;
    let n_test = data.test_y.len();
    let mut correct = 0u64;
    let t0 = Instant::now();
    // Pipeline in bursts sized to the per-connection in-flight cap.
    let rows: Vec<usize> = (0..n_requests).map(|i| i % n_test).collect();
    for burst in rows.chunks(GatewayConfig::default().max_in_flight_per_conn) {
        for &row in burst {
            client.stream.write_all(&classify_request(data.test_x.row(row)))?;
        }
        for &row in burst {
            let (status, body) = client.recv()?;
            assert_eq!(status, 200, "deep queue must serve everything: {body}");
            if json_usize(&body, "predicted") == Some(data.test_y[row]) {
                correct += 1;
            }
        }
    }
    let wall = t0.elapsed();
    drop(client);
    let snap = gw.shutdown();
    assert_eq!(snap.completed, n_requests as u64, "drain served everything");
    Ok(Cell {
        model,
        replicas,
        kernel_batch,
        requests: snap.completed,
        accuracy: correct as f32 / n_requests as f32,
        mean_agreement: snap.mean_agreement,
        throughput_rps: n_requests as f64 / wall.as_secs_f64(),
        p50_us: snap.p50_latency.as_micros(),
        p90_us: snap.p90_latency.as_micros(),
        p99_us: snap.p99_latency.as_micros(),
        joules_per_frame: snap.joules_per_frame(),
    })
}

/// The spf actuator paying off: serve the identical request stream once
/// at a fixed spf and once with `ControllerConfig::spf_classes` enabled.
/// With replica agreement running high, the controller halves the
/// class's spf toward its floor, so later requests run fewer ticks per
/// frame — more req/s and fewer joules per frame at (near-)equal
/// accuracy. Returns the measured cell plus the final live spf.
fn adaptive_spf_cell(
    model: &'static str,
    path: &std::path::Path,
    workers: usize,
    spf: usize,
    n_requests: usize,
    data: &BenchData,
    adaptive: bool,
) -> Result<(Cell, usize), Box<dyn std::error::Error>> {
    let mut builder = ServeConfig::builder(SEED)
        .replicas(1)
        .workers(workers)
        .spf(spf)
        .queue_capacity(512)
        .batch_max(32)
        .kernel_batch(8);
    if adaptive {
        builder = builder.controller(ControllerConfig {
            sample_interval: Duration::from_millis(5),
            cooldown: Duration::from_millis(20),
            // Only the spf actuator: replicas stay pinned at 1.
            min_replicas: 1,
            max_replicas: 1,
            spf_classes: vec![SpfClass::new(spf / 2, spf)],
            ..ControllerConfig::default()
        });
    }
    let rt = serve_persisted(path, builder.build()?)?;
    let n_test = data.test_y.len();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_requests)
        .map(|i| rt.submit(data.test_x.row(i % n_test).to_vec()))
        .collect::<Result<_, _>>()?;
    let mut correct = 0u64;
    let mut agreement_sum = 0.0f32;
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait()?;
        agreement_sum += r.agreement;
        if r.predicted == data.test_y[i % n_test] {
            correct += 1;
        }
    }
    let wall = t0.elapsed();
    let final_spf = rt.spf_per_class()[0];
    let snap = rt.shutdown();
    assert_eq!(snap.completed, n_requests as u64, "drain served everything");
    Ok((
        Cell {
            model,
            replicas: 1,
            kernel_batch: 8,
            requests: snap.completed,
            accuracy: correct as f32 / n_requests as f32,
            mean_agreement: agreement_sum / n_requests as f32,
            throughput_rps: n_requests as f64 / wall.as_secs_f64(),
            p50_us: snap.p50_latency.as_micros(),
            p90_us: snap.p90_latency.as_micros(),
            p99_us: snap.p99_latency.as_micros(),
            joules_per_frame: snap.joules_per_frame(),
        },
        final_spf,
    ))
}

/// One consolidation measurement: a fixed two-model workload served at
/// a fixed total worker-thread budget, either split across two solo
/// runtimes or consolidated onto one packed chip.
struct ConsolidationCell {
    mode: &'static str,
    models_per_chip: usize,
    workers_total: usize,
    requests: u64,
    aggregate_rps: f64,
    accuracy: [f32; 2],
    joules_per_frame: f64,
}

/// Serve `n_per_model` requests against each of two nets through solo
/// runtimes driven concurrently (each with `workers_each` workers), and
/// return (per-model correct counts, joules/frame summed over chips).
fn solo_split_run(
    nets: [&Network; 2],
    datasets: [&BenchData; 2],
    workers_each: usize,
    spf: usize,
    n_per_model: usize,
) -> Result<([u64; 2], f64), Box<dyn std::error::Error>> {
    let cfg = || {
        ServeConfig::builder(SEED)
            .replicas(2)
            .workers(workers_each)
            .spf(spf)
            .queue_capacity(512)
            .batch_max(32)
            .kernel_batch(8)
            .build()
    };
    let mut correct = [0u64; 2];
    let mut joules = 0.0f64;
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let mut drivers = Vec::new();
        for m in 0..2 {
            let serve_cfg = cfg()?;
            let (net, data) = (nets[m], datasets[m]);
            drivers.push(scope.spawn(move || -> Result<(u64, f64), String> {
                let rt = serve_network(net, serve_cfg).map_err(|e| e.to_string())?;
                let n_test = data.test_y.len();
                let handles: Vec<_> = (0..n_per_model)
                    .map(|i| rt.submit(data.test_x.row(i % n_test).to_vec()))
                    .collect::<Result<_, _>>()
                    .map_err(|e| e.to_string())?;
                let mut correct = 0u64;
                for (i, h) in handles.into_iter().enumerate() {
                    let r = h.wait().map_err(|e| e.to_string())?;
                    if r.predicted == data.test_y[i % n_test] {
                        correct += 1;
                    }
                }
                let snap = rt.shutdown();
                Ok((correct, snap.joules_per_frame()))
            }));
        }
        for (m, driver) in drivers.into_iter().enumerate() {
            let (c, j) = driver.join().expect("solo driver")?;
            correct[m] = c;
            joules += j / 2.0; // mean over the two chips
        }
        Ok(())
    })?;
    Ok((correct, joules))
}

/// The tentpole benchmark: two tenants consolidated onto one chip vs the
/// same workload split across two solo runtimes at equal total worker
/// threads. Also asserts per-tenant accuracy equality (bit-identity) and
/// — at meaningful request counts — the aggregate-throughput win.
fn consolidation_sweep(
    net_a: &Network,
    data_a: &BenchData,
    scale: &RunScale,
    workers: usize,
    spf: usize,
    n_requests: usize,
    trail: Option<&str>,
) -> Result<Vec<ConsolidationCell>, Box<dyn std::error::Error>> {
    println!("\n== consolidation: two models, one chip vs split solo runtimes ==");
    let bench_b = TestBench::new(5, SEED);
    let data_b = bench_b.load_data(scale, SEED);
    let (net_b, _) = bench_b.train(&data_b, Penalty::None, scale.epochs, SEED)?;

    let n_per_model = (n_requests / 2).max(1);
    let workers_each = (workers / 2).max(1);
    let total = 2 * n_per_model;

    // Baseline: two solo runtimes splitting the worker pool, driven
    // concurrently. Wall clock covers both streams end to end.
    let t0 = Instant::now();
    let (solo_correct, solo_joules) = solo_split_run(
        [net_a, &net_b],
        [data_a, &data_b],
        workers_each,
        spf,
        n_per_model,
    )?;
    let solo_wall = t0.elapsed();

    // Consolidated: one packed runtime owning the full pool; any worker
    // serves any tenant, and a kernel batch mixes tenants into the same
    // lockstep pass through per-model lane groups.
    let mut builder = ServeConfig::builder(SEED)
        .replicas(2)
        .workers(workers)
        .spf(spf)
        .queue_capacity(512)
        .batch_max(32)
        .kernel_batch(8);
    if trail.is_some() {
        builder = builder.telemetry(TelemetryConfig {
            interval: Duration::from_millis(20),
            ..TelemetryConfig::default()
        });
    }
    let specs = [extract_spec(net_a)?, extract_spec(&net_b)?];
    let rt = match trail {
        Some(path) => serve_packed_specs_with_sink(
            &specs,
            builder.build()?,
            Arc::new(JsonLinesSink::new(File::create(path)?)) as Arc<dyn MetricsSink>,
        )?,
        None => serve_packed_specs(&specs, builder.build()?)?,
    };
    let datasets = [data_a, &data_b];
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(total);
    for i in 0..n_per_model {
        for (m, data) in datasets.iter().enumerate() {
            let n_test = data.test_y.len();
            let request = SubmitRequest::new(data.test_x.row(i % n_test).to_vec()).model(m);
            handles.push((m, i, rt.submit(request)?));
        }
    }
    let mut packed_correct = [0u64; 2];
    for (m, i, h) in handles {
        let r = h.wait()?;
        let data = datasets[m];
        if r.predicted == data.test_y[i % data.test_y.len()] {
            packed_correct[m] += 1;
        }
    }
    let packed_wall = t0.elapsed();
    let snap = rt.shutdown();
    assert_eq!(snap.completed, total as u64, "drain served everything");

    // Bit-identity, observed end to end: tenant m's k-th request saw the
    // same frame seed in both runs, so per-model accuracy is *exactly*
    // equal — consolidation costs zero accuracy.
    assert_eq!(
        packed_correct, solo_correct,
        "packed tenants must match their solo runtimes prediction-for-prediction"
    );

    let acc = |correct: [u64; 2]| {
        [
            correct[0] as f32 / n_per_model as f32,
            correct[1] as f32 / n_per_model as f32,
        ]
    };
    let cells = vec![
        ConsolidationCell {
            mode: "solo_split",
            models_per_chip: 1,
            workers_total: 2 * workers_each,
            requests: total as u64,
            aggregate_rps: total as f64 / solo_wall.as_secs_f64(),
            accuracy: acc(solo_correct),
            joules_per_frame: solo_joules,
        },
        ConsolidationCell {
            mode: "packed",
            models_per_chip: 2,
            workers_total: workers,
            requests: total as u64,
            aggregate_rps: total as f64 / packed_wall.as_secs_f64(),
            accuracy: acc(packed_correct),
            joules_per_frame: snap.joules_per_frame(),
        },
    ];
    println!(
        "\n{:<12} {:>12} {:>8} {:>11} {:>10} {:>10} {:>12}",
        "mode", "models/chip", "workers", "req/s", "acc bench1", "acc bench5", "J/frame"
    );
    for c in &cells {
        println!(
            "{:<12} {:>12} {:>8} {:>11.1} {:>10.4} {:>10.4} {:>12.3e}",
            c.mode,
            c.models_per_chip,
            c.workers_total,
            c.aggregate_rps,
            c.accuracy[0],
            c.accuracy[1],
            c.joules_per_frame,
        );
    }
    let ratio = cells[1].aggregate_rps / cells[0].aggregate_rps;
    println!("consolidation ratio (packed / solo_split): {ratio:.2}x aggregate req/s");
    // The packed win is a parallel-serving effect (shared worker pool,
    // grouped lockstep passes); on a box that can't actually run the
    // worker threads concurrently the comparison is scheduler noise.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if n_per_model >= 100 && cores >= workers {
        assert!(
            ratio > 1.0,
            "packing two tenants onto one chip must beat split solo runtimes \
             at equal total workers ({ratio:.2}x)"
        );
    } else if n_per_model >= 100 {
        println!(
            "(skipping packed-beats-split assert: {cores} core(s) < {workers} \
             needed to run the split workers concurrently)"
        );
    }
    Ok(cells)
}

/// One quality-tier measurement: the full stream served at one named
/// tier of a calibrated tiered runtime.
struct TierCell {
    tier: &'static str,
    replicas: usize,
    spf: usize,
    requests: u64,
    accuracy: f32,
    escalated: u64,
    mean_confidence: f32,
    throughput_rps: f64,
    p50_us: u128,
    p99_us: u128,
    joules_per_frame: f64,
}

/// The benchmark's tier table: `fast` is the cheap corner of the
/// copies×spf grid, `certain` the accurate one, and `guarded` is fast's
/// operating point wearing a confidence contract that escalates
/// low-margin answers onto `certain`.
fn tier_table(spf: usize) -> Vec<QualityTier> {
    let fast_spf = (spf / 4).max(1);
    vec![
        QualityTier::new("fast", 1, fast_spf),
        QualityTier::new("certain", 4, spf),
        QualityTier::new("guarded", 1, fast_spf)
            .confidence_target(0.8)
            .escalate_to("certain"),
    ]
}

/// Serve the whole stream at one named tier on a fresh runtime carrying
/// the full tier table, calibrated from held-out training frames.
fn tier_cell(
    tier: &'static str,
    path: &std::path::Path,
    table: &[QualityTier],
    workers: usize,
    n_requests: usize,
    data: &BenchData,
    calib: &[(Vec<f32>, usize)],
) -> Result<TierCell, Box<dyn std::error::Error>> {
    let point = table.iter().find(|t| t.name == tier).expect("tier in table");
    let rt = serve_persisted(
        path,
        ServeConfig::builder(SEED)
            .replicas(1)
            .workers(workers)
            .queue_capacity(512)
            .batch_max(32)
            .kernel_batch(8)
            .tiers(table.to_vec())
            .build()?,
    )?;
    rt.calibrate_tiers(calib)?;
    let n_test = data.test_y.len();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_requests)
        .map(|i| {
            rt.submit(SubmitRequest::new(data.test_x.row(i % n_test).to_vec()).quality(tier))
        })
        .collect::<Result<_, _>>()?;
    let mut correct = 0u64;
    let mut escalated = 0u64;
    let mut confidence_sum = 0.0f32;
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait()?;
        confidence_sum += r.served.confidence();
        escalated += u64::from(r.served.escalated());
        if r.predicted == data.test_y[i % n_test] {
            correct += 1;
        }
    }
    let wall = t0.elapsed();
    let snap = rt.shutdown();
    assert_eq!(snap.completed, n_requests as u64, "drain served everything");
    Ok(TierCell {
        tier,
        replicas: point.replicas,
        spf: point.spf,
        requests: snap.completed,
        accuracy: correct as f32 / n_requests as f32,
        escalated,
        mean_confidence: confidence_sum / n_requests as f32,
        throughput_rps: n_requests as f64 / wall.as_secs_f64(),
        p50_us: snap.p50_latency.as_micros(),
        p99_us: snap.p99_latency.as_micros(),
        joules_per_frame: snap.joules_per_frame(),
    })
}

/// The quality-tier benchmark: fast vs certain vs guarded (escalating)
/// on the biased model, plus an optional mixed-stream telemetry trail.
fn tier_sweep(
    path: &std::path::Path,
    workers: usize,
    spf: usize,
    n_requests: usize,
    scale: &RunScale,
    data: &BenchData,
    trail: Option<&str>,
) -> Result<Vec<TierCell>, Box<dyn std::error::Error>> {
    println!("\n== quality tiers: fast vs certain vs guarded (biased model) ==\n");
    let table = tier_table(spf);
    // Held-out calibration frames: training rows the serving stream
    // never touches, so the fitted map reflects out-of-stream margins.
    let calib: Vec<(Vec<f32>, usize)> = (0..data.train_y.len().min(240))
        .map(|i| (data.train_x.row(i).to_vec(), data.train_y[i]))
        .collect();
    println!(
        "{:<8} {:>8} {:>5} {:>10} {:>10} {:>11} {:>11} {:>9} {:>9} {:>12}",
        "tier", "replicas", "spf", "accuracy", "escalated", "confidence", "req/s", "p50 µs",
        "p99 µs", "J/frame"
    );
    let mut cells = Vec::new();
    for tier in ["fast", "certain", "guarded"] {
        let cell = tier_cell(tier, path, &table, workers, n_requests, data, &calib)?;
        println!(
            "{:<8} {:>8} {:>5} {:>10.4} {:>10} {:>11.3} {:>11.1} {:>9} {:>9} {:>12.3e}",
            cell.tier,
            cell.replicas,
            cell.spf,
            cell.accuracy,
            cell.escalated,
            cell.mean_confidence,
            cell.throughput_rps,
            cell.p50_us,
            cell.p99_us,
            cell.joules_per_frame,
        );
        cells.push(cell);
    }
    let (fast, certain, guarded) = (&cells[0], &cells[1], &cells[2]);
    assert!(
        fast.throughput_rps > certain.throughput_rps,
        "the fast tier must win on req/s ({:.1} vs {:.1})",
        fast.throughput_rps,
        certain.throughput_rps
    );
    assert!(
        fast.joules_per_frame < certain.joules_per_frame,
        "the fast tier must win on energy ({:.3e} vs {:.3e} J/frame)",
        fast.joules_per_frame,
        certain.joules_per_frame
    );
    let gap = certain.accuracy - fast.accuracy;
    let recovered = guarded.accuracy - fast.accuracy;
    println!(
        "\nescalation: {} of {} answers re-ran on certain; accuracy gap {:.4}, recovered {:.4}",
        guarded.escalated, guarded.requests, gap, recovered
    );
    if scale.n_train >= 800 {
        assert!(
            certain.accuracy >= fast.accuracy,
            "the certain tier must not lose to fast on accuracy ({:.4} vs {:.4})",
            certain.accuracy,
            fast.accuracy
        );
        assert!(
            recovered >= gap / 2.0,
            "escalation must recover at least half the fast→certain accuracy gap \
             (gap {gap:.4}, recovered {recovered:.4})"
        );
        assert!(
            fast.joules_per_frame <= guarded.joules_per_frame
                && guarded.joules_per_frame <= certain.joules_per_frame,
            "escalation energy must sit between the pure tiers \
             ({:.3e} <= {:.3e} <= {:.3e})",
            fast.joules_per_frame,
            guarded.joules_per_frame,
            certain.joules_per_frame
        );
    } else {
        println!(
            "(skipping tier-accuracy asserts at n_train {} < 800: models too noisy)",
            scale.n_train
        );
    }

    // A mixed round-robin stream over all three tiers, exporting the
    // per-tier `serve.tier.{t}.*` telemetry families to the trail.
    if let Some(trail_path) = trail {
        let sink = Arc::new(JsonLinesSink::new(File::create(trail_path)?));
        let cfg = ServeConfig::builder(SEED)
            .replicas(1)
            .workers(workers)
            .queue_capacity(512)
            .batch_max(32)
            .kernel_batch(8)
            .tiers(table.clone())
            .telemetry(TelemetryConfig {
                interval: Duration::from_millis(10),
                ..TelemetryConfig::default()
            })
            .build()?;
        let rt = serve_persisted_with_sink(path, cfg, sink as Arc<dyn MetricsSink>)?;
        rt.calibrate_tiers(&calib)?;
        let names = ["fast", "certain", "guarded"];
        let n_test = data.test_y.len();
        let handles: Vec<_> = (0..n_requests)
            .map(|i| {
                rt.submit(
                    SubmitRequest::new(data.test_x.row(i % n_test).to_vec())
                        .quality(names[i % names.len()]),
                )
            })
            .collect::<Result<_, _>>()?;
        for h in handles {
            h.wait()?;
        }
        rt.shutdown();
        println!("tiered telemetry trail written to {trail_path}");
    }
    Ok(cells)
}

/// One scale-out measurement: the full stream through an in-process
/// fleet at a given shard count, equal per-shard workers.
struct FleetCell {
    shards: usize,
    workers_per_shard: usize,
    requests: u64,
    accuracy: f32,
    aggregate_rps: f64,
    p50_us: u128,
    p99_us: u128,
}

/// Per-seq determinism fingerprint (predicted, votes) for the
/// bit-identity cross-check between fleet widths.
type FleetFingerprint = Vec<(usize, Vec<u64>)>;

/// Serve the stream through a `shards`-wide fleet; returns the cell and
/// the fingerprint of every answer.
fn fleet_cell(
    path: &std::path::Path,
    shards: usize,
    workers: usize,
    spf: usize,
    n_requests: usize,
    data: &BenchData,
    trail: Option<&str>,
) -> Result<(FleetCell, FleetFingerprint), Box<dyn std::error::Error>> {
    let serve_cfg = ServeConfig::builder(SEED)
        .replicas(2)
        .workers(workers)
        .spf(spf)
        .queue_capacity(512)
        .batch_max(32)
        .kernel_batch(8)
        .telemetry(TelemetryConfig {
            interval: Duration::from_millis(20),
            ..TelemetryConfig::default()
        })
        .build()?;
    let cfg = FleetConfig::new(serve_cfg);
    let fleet = match trail {
        Some(trail_path) => fleet_persisted_with_sink(
            path,
            shards,
            cfg,
            Arc::new(JsonLinesSink::new(File::create(trail_path)?)) as Arc<dyn MetricsSink>,
        )?,
        None => fleet_persisted(path, shards, cfg)?,
    };
    let n_test = data.test_y.len();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_requests)
        .map(|i| {
            fleet
                .router()
                .submit_request(SubmitRequest::new(data.test_x.row(i % n_test).to_vec()))
        })
        .collect::<Result<_, _>>()?;
    let mut correct = 0u64;
    let mut fingerprint = Vec::with_capacity(n_requests);
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait()?;
        fingerprint.push((r.predicted, r.votes.clone()));
        if r.predicted == data.test_y[i % n_test] {
            correct += 1;
        }
    }
    let wall = t0.elapsed();
    let (snap, _) = fleet.shutdown();
    assert_eq!(snap.completed, n_requests as u64, "drain served everything");
    Ok((
        FleetCell {
            shards,
            workers_per_shard: workers,
            requests: snap.completed,
            accuracy: correct as f32 / n_requests as f32,
            aggregate_rps: n_requests as f64 / wall.as_secs_f64(),
            p50_us: snap.p50_latency.as_micros(),
            p99_us: snap.p99_latency.as_micros(),
        },
        fingerprint,
    ))
}

/// The scale-out benchmark: 1 shard vs N shards at equal per-shard
/// workers, bit-identity asserted across widths.
fn fleet_sweep(
    path: &std::path::Path,
    n_shards: usize,
    workers: usize,
    spf: usize,
    n_requests: usize,
    data: &BenchData,
    trail: Option<&str>,
) -> Result<Vec<FleetCell>, Box<dyn std::error::Error>> {
    println!("\n== scale-out: {n_shards}-shard fleet vs 1 shard (biased model) ==\n");
    println!(
        "{:<7} {:>13} {:>10} {:>11} {:>9} {:>9}",
        "shards", "workers/shard", "accuracy", "req/s", "p50 µs", "p99 µs"
    );
    let (solo, solo_fp) = fleet_cell(path, 1, workers, spf, n_requests, data, None)?;
    let (wide, wide_fp) = fleet_cell(path, n_shards, workers, spf, n_requests, data, trail)?;
    assert_eq!(
        solo_fp, wide_fp,
        "fleet width must be invisible in the answer stream"
    );
    let cells = vec![solo, wide];
    for c in &cells {
        println!(
            "{:<7} {:>13} {:>10.4} {:>11.1} {:>9} {:>9}",
            c.shards, c.workers_per_shard, c.accuracy, c.aggregate_rps, c.p50_us, c.p99_us
        );
    }
    let ratio = cells[1].aggregate_rps / cells[0].aggregate_rps;
    println!("scale-out ratio ({n_shards} shards / 1 shard): {ratio:.2}x aggregate req/s");
    if let Some(trail_path) = trail {
        println!("aggregated fleet heartbeat trail written to {trail_path}");
    }
    // The win is a parallelism effect: it needs enough requests to
    // amortize dispatch and enough cores to run every shard's workers.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if n_requests >= 200 && cores >= n_shards * workers {
        assert!(
            ratio > 1.0,
            "an {n_shards}-shard fleet must beat 1 shard on aggregate req/s \
             at equal per-shard workers ({ratio:.2}x)"
        );
    } else if n_requests >= 200 {
        println!(
            "(skipping fleet-beats-solo assert: {cores} core(s) < {} \
             needed to run all shards concurrently)",
            n_shards * workers
        );
    }
    Ok(cells)
}

/// Smallest replica count in the sweep reaching `target` accuracy.
fn replicas_needed(cells: &[Cell], model: &str, target: f32) -> Option<usize> {
    cells
        .iter()
        .filter(|c| c.model == model && c.accuracy >= target)
        .map(|c| c.replicas)
        .min()
}

/// Saturate a controller-enabled runtime and export telemetry snapshots.
///
/// The burst keeps the queue deep, so the controller widens the kernel
/// fusion toward the configured max; the replica axis follows the live
/// agreement metric within its bounds. Both live values are printed so
/// the adaptation is visible alongside the JSONL snapshot trail.
fn adaptive_run(
    net: &Network,
    data: &BenchData,
    out_path: &str,
    workers: usize,
    spf: usize,
    n_requests: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== adaptive-control run ({n_requests} requests, telemetry -> {out_path}) ==");
    let sink = Arc::new(JsonLinesSink::new(File::create(out_path)?));
    let cfg = ServeConfig::builder(SEED)
        .replicas(2)
        .workers(workers)
        .spf(spf)
        .queue_capacity(512)
        .batch_max(32)
        .kernel_batch(16) // doubles as the adaptive ceiling
        .controller(ControllerConfig {
            sample_interval: Duration::from_millis(5),
            cooldown: Duration::from_millis(100),
            min_replicas: 1,
            max_replicas: 4,
            ..ControllerConfig::default()
        })
        .telemetry(TelemetryConfig {
            interval: Duration::from_millis(20),
            ..TelemetryConfig::default()
        })
        .build()?;
    let rt = serve_network_with_sink(net, cfg, sink as Arc<dyn MetricsSink>)?;
    let n_test = data.test_y.len();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_requests)
        .map(|i| rt.submit(data.test_x.row(i % n_test).to_vec()))
        .collect::<Result<_, _>>()?;
    for h in handles {
        h.wait()?;
    }
    let wall = t0.elapsed();
    println!(
        "served {} requests in {:.2?} ({:.1} req/s); live kernel_batch {} (start 16), live replicas {} (start 2)",
        n_requests,
        wall,
        n_requests as f64 / wall.as_secs_f64(),
        rt.kernel_batch(),
        rt.replicas(),
    );
    let snap = rt.shutdown();
    println!(
        "final mean agreement {:.3}; snapshots written to {out_path}",
        snap.mean_agreement
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--telemetry [path.jsonl]` enables the adaptive-control run.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out: Option<String> = args.iter().position(|a| a == "--telemetry").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "tn_serve_telemetry.jsonl".into())
    });
    let over_the_wire = args.iter().any(|a| a == "--gateway");
    // `--packed [trail.jsonl]` enables the consolidation benchmark; the
    // optional path receives the packed run's telemetry trail.
    let packed_at = args.iter().position(|a| a == "--packed");
    let packed_trail: Option<String> = packed_at.and_then(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
    });
    // `--tiers [trail.jsonl]` enables the quality-tier benchmark; the
    // optional path receives the mixed-stream per-tier telemetry trail.
    let tiers_at = args.iter().position(|a| a == "--tiers");
    let tiers_trail: Option<String> = tiers_at.and_then(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
    });
    // `--fleet [trail.jsonl]` enables the scale-out benchmark; the
    // optional path receives the fleet's aggregated heartbeat trail.
    let fleet_at = args.iter().position(|a| a == "--fleet");
    let fleet_trail: Option<String> = fleet_at.and_then(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
    });
    let scale = RunScale {
        n_train: env_usize("TN_TRAIN", 1200),
        n_test: env_usize("TN_TEST", 300),
        epochs: env_usize("TN_EPOCHS", 5),
        seeds: 1,
        threads: 2,
    };
    let n_requests = env_usize("TN_SERVE_REQUESTS", 1000);
    let workers = env_usize("TN_SERVE_WORKERS", 2).max(2);
    let spf = env_usize("TN_SERVE_SPF", 8);

    println!("== training test bench 1 (Tea vs probability-biased) ==");
    let bench = TestBench::new(1, SEED);
    let data = bench.load_data(&scale, SEED);
    let tea = train_model(&bench, &data, Penalty::None, &scale, SEED)?;
    let biased = train_model(&bench, &data, bench.biasing_penalty(), &scale, SEED)?;
    println!(
        "float accuracy: tea {:.4}, biased {:.4}",
        tea.float_accuracy, biased.float_accuracy
    );

    // Persist both, then serve strictly from disk.
    let dir = std::env::temp_dir();
    let tea_path = dir.join("tn_serve_tea.tnm");
    let biased_path = dir.join("tn_serve_biased.tnm");
    save_network(&tea.network, File::create(&tea_path)?)?;
    save_network(&biased.network, File::create(&biased_path)?)?;

    println!(
        "\n== serving {n_requests} requests per cell ({workers} workers, {spf} spf) ==\n"
    );
    println!(
        "{:<8} {:>8} {:>7} {:>10} {:>10} {:>11} {:>9} {:>9} {:>9} {:>12}",
        "model", "replicas", "kbatch", "accuracy", "agreement", "req/s", "p50 µs", "p90 µs", "p99 µs",
        "J/frame"
    );
    let mut cells = Vec::new();
    for (model, path) in [("tea", &tea_path), ("biased", &biased_path)] {
        for replicas in REPLICA_SWEEP {
            for kernel_batch in KERNEL_BATCH_SWEEP {
                let point = SweepPoint {
                    replicas,
                    kernel_batch,
                };
                let cell = serve_cell(model, path, point, workers, spf, n_requests, &data)?;
                println!(
                    "{:<8} {:>8} {:>7} {:>10.4} {:>10.3} {:>11.1} {:>9} {:>9} {:>9} {:>12.3e}",
                    cell.model,
                    cell.replicas,
                    cell.kernel_batch,
                    cell.accuracy,
                    cell.mean_agreement,
                    cell.throughput_rps,
                    cell.p50_us,
                    cell.p90_us,
                    cell.p99_us,
                    cell.joules_per_frame,
                );
                cells.push(cell);
            }
        }
    }

    // Over-the-wire cells: the same workload through the tn-gateway
    // front-end, measured from the client side of a real socket.
    let mut gateway_cells = Vec::new();
    if over_the_wire {
        println!("\n== over the wire: tn-gateway, pipelined HTTP/1.1 client ==\n");
        println!(
            "{:<8} {:>8} {:>7} {:>10} {:>10} {:>11} {:>9} {:>9} {:>9} {:>12}",
            "model", "replicas", "kbatch", "accuracy", "agreement", "req/s", "p50 µs", "p90 µs",
            "p99 µs", "J/frame"
        );
        for (model, path) in [("tea", &tea_path), ("biased", &biased_path)] {
            for replicas in [1usize, 2] {
                let point = SweepPoint {
                    replicas,
                    kernel_batch: KERNEL_BATCH_SWEEP[1],
                };
                let cell = gateway_cell(model, path, point, workers, spf, n_requests, &data)?;
                println!(
                    "{:<8} {:>8} {:>7} {:>10.4} {:>10.3} {:>11.1} {:>9} {:>9} {:>9} {:>12.3e}",
                    cell.model,
                    cell.replicas,
                    cell.kernel_batch,
                    cell.accuracy,
                    cell.mean_agreement,
                    cell.throughput_rps,
                    cell.p50_us,
                    cell.p90_us,
                    cell.p99_us,
                    cell.joules_per_frame,
                );
                gateway_cells.push(cell);
            }
        }
    }

    // Multi-tenant consolidation: both models on one packed chip vs two
    // solo runtimes splitting the same worker budget.
    let consolidation_cells = if packed_at.is_some() {
        consolidation_sweep(
            &biased.network,
            &data,
            &scale,
            workers,
            spf,
            n_requests,
            packed_trail.as_deref(),
        )?
    } else {
        Vec::new()
    };

    // Scale-out: the same stream through a sharded fleet, 1 shard vs N
    // shards at equal per-shard workers, answers bit-identical.
    let fleet_cells = if fleet_at.is_some() {
        fleet_sweep(
            &biased_path,
            env_usize("TN_FLEET_SHARDS", 2).max(2),
            workers,
            spf,
            n_requests,
            &data,
            fleet_trail.as_deref(),
        )?
    } else {
        Vec::new()
    };

    // Quality tiers: the same stream at named operating points, with
    // calibrated confidence and the abstain/escalate path in between.
    let tier_cells = if tiers_at.is_some() {
        tier_sweep(
            &biased_path,
            workers,
            spf,
            n_requests,
            &scale,
            &data,
            tiers_trail.as_deref(),
        )?
    } else {
        Vec::new()
    };

    // Controller-driven spf: same stream, fixed spf vs the adaptive
    // actuator halving toward the class floor while agreement runs high.
    println!("\n== adaptive spf: fixed {spf} vs controller-driven (biased model) ==\n");
    let (spf_fixed, _) =
        adaptive_spf_cell("spf_fixed", &biased_path, workers, spf, n_requests, &data, false)?;
    let (spf_adaptive, live_spf) =
        adaptive_spf_cell("spf_adaptive", &biased_path, workers, spf, n_requests, &data, true)?;
    for c in [&spf_fixed, &spf_adaptive] {
        println!(
            "{:<13} accuracy {:.4}  req/s {:>8.1}  J/frame {:.3e}",
            c.model, c.accuracy, c.throughput_rps, c.joules_per_frame
        );
    }
    println!(
        "live spf settled at {live_spf} (started {spf}, floor {}); joules/frame {:.2}x, req/s {:.2}x",
        spf / 2,
        spf_adaptive.joules_per_frame / spf_fixed.joules_per_frame,
        spf_adaptive.throughput_rps / spf_fixed.throughput_rps,
    );
    assert!(
        spf_adaptive.joules_per_frame < spf_fixed.joules_per_frame,
        "adaptive spf must cut energy per frame"
    );
    if scale.n_train >= 800 {
        assert!(
            spf_adaptive.accuracy >= spf_fixed.accuracy - 0.03,
            "adaptive spf gave up too much accuracy: {:.4} vs {:.4}",
            spf_adaptive.accuracy,
            spf_fixed.accuracy
        );
    }
    let adaptive_spf_cells = [spf_fixed, spf_adaptive];

    // Batch-first payoff: same responses, more of them per second.
    println!();
    for replicas in REPLICA_SWEEP {
        let rps = |kb: usize| {
            cells
                .iter()
                .filter(|c| c.replicas == replicas && c.kernel_batch == kb)
                .map(|c| c.throughput_rps)
                .sum::<f64>()
                / 2.0 // mean over the two models
        };
        let (lone, fused) = (rps(1), rps(KERNEL_BATCH_SWEEP[1]));
        println!(
            "{replicas} replica(s): kernel_batch {} gives {:.2}x req/s over frame-at-a-time",
            KERNEL_BATCH_SWEEP[1],
            fused / lone
        );
    }

    // Co-optimization, served live. Deploying to stochastic crossbars
    // costs each model accuracy relative to its own float baseline;
    // replicas buy that gap back. The paper's claim is that the biasing
    // penalty shrinks per-copy variance, so the biased model recovers its
    // float accuracy with no more replicas than Tea needs for its own.
    const RECOVERY_GAP: f32 = 0.03;
    let needs = |model: &'static str, float_acc: f32| {
        let target = float_acc - RECOVERY_GAP;
        let n = replicas_needed(&cells, model, target);
        println!(
            "{model}: float {float_acc:.4}, recovery target {target:.4} → needs {} replica(s)",
            n.map_or_else(
                || format!("more than {}", REPLICA_SWEEP[REPLICA_SWEEP.len() - 1]),
                |r| r.to_string()
            )
        );
        n.unwrap_or(usize::MAX)
    };
    println!();
    let tea_needs = needs("tea", tea.float_accuracy);
    let biased_needs = needs("biased", biased.float_accuracy);
    if scale.n_train >= 800 {
        assert!(
            biased_needs <= tea_needs,
            "co-optimization violated: biased needs {biased_needs} replicas vs tea {tea_needs}"
        );
        println!("co-optimization holds: biased recovers float accuracy at no extra replica cost");
    } else {
        // Tiny smoke-test scales train models too noisy for the replica
        // comparison to be meaningful; report instead of asserting.
        println!(
            "(skipping co-optimization assert at n_train {} < 800: models too noisy)",
            scale.n_train
        );
    }

    if let Ok(json_path) = std::env::var("TN_SERVE_JSON") {
        let fmt_rows = |cells: &[Cell]| -> String {
            let mut rows = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{\"model\": \"{}\", \"replicas\": {}, \"kernel_batch\": {}, \"requests\": {}, \"accuracy\": {:.4}, \"agreement\": {:.4}, \"req_per_sec\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"joules_per_frame\": {:.4e}}}",
                    c.model,
                    c.replicas,
                    c.kernel_batch,
                    c.requests,
                    c.accuracy,
                    c.mean_agreement,
                    c.throughput_rps,
                    c.p50_us,
                    c.p90_us,
                    c.p99_us,
                    c.joules_per_frame,
                ));
            }
            rows
        };
        let rows = fmt_rows(&cells);
        let adaptive_rows = format!(
            ",\n  \"adaptive_spf_cells\": [\n{}\n  ],\n  \"adaptive_spf_final\": {live_spf}",
            fmt_rows(&adaptive_spf_cells)
        );
        let gateway_rows = if gateway_cells.is_empty() {
            String::new()
        } else {
            format!(",\n  \"gateway_cells\": [\n{}\n  ]", fmt_rows(&gateway_cells))
        };
        let consolidation_rows = if consolidation_cells.is_empty() {
            String::new()
        } else {
            let mut rows = String::new();
            for (i, c) in consolidation_cells.iter().enumerate() {
                if i > 0 {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{\"mode\": \"{}\", \"models_per_chip\": {}, \"workers_total\": {}, \"requests\": {}, \"aggregate_req_per_sec\": {:.1}, \"accuracy_bench1\": {:.4}, \"accuracy_bench5\": {:.4}, \"joules_per_frame\": {:.4e}}}",
                    c.mode,
                    c.models_per_chip,
                    c.workers_total,
                    c.requests,
                    c.aggregate_rps,
                    c.accuracy[0],
                    c.accuracy[1],
                    c.joules_per_frame,
                ));
            }
            format!(",\n  \"consolidation_cells\": [\n{rows}\n  ]")
        };
        let fleet_rows = if fleet_cells.is_empty() {
            String::new()
        } else {
            let mut rows = String::new();
            for (i, c) in fleet_cells.iter().enumerate() {
                if i > 0 {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{\"shards\": {}, \"workers_per_shard\": {}, \"requests\": {}, \"accuracy\": {:.4}, \"aggregate_req_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
                    c.shards,
                    c.workers_per_shard,
                    c.requests,
                    c.accuracy,
                    c.aggregate_rps,
                    c.p50_us,
                    c.p99_us,
                ));
            }
            format!(",\n  \"fleet_cells\": [\n{rows}\n  ]")
        };
        let tier_rows = if tier_cells.is_empty() {
            String::new()
        } else {
            let mut rows = String::new();
            for (i, c) in tier_cells.iter().enumerate() {
                if i > 0 {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{\"tier\": \"{}\", \"replicas\": {}, \"spf\": {}, \"requests\": {}, \"accuracy\": {:.4}, \"escalated\": {}, \"mean_confidence\": {:.4}, \"req_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"joules_per_frame\": {:.4e}}}",
                    c.tier,
                    c.replicas,
                    c.spf,
                    c.requests,
                    c.accuracy,
                    c.escalated,
                    c.mean_confidence,
                    c.throughput_rps,
                    c.p50_us,
                    c.p99_us,
                    c.joules_per_frame,
                ));
            }
            format!(",\n  \"tier_cells\": [\n{rows}\n  ]")
        };
        let fmt_needs = |n: usize| {
            if n == usize::MAX {
                "null".to_string()
            } else {
                n.to_string()
            }
        };
        let json = format!(
            "{{\n  \"bench\": 1,\n  \"seed\": {SEED},\n  \"spf\": {spf},\n  \"workers\": {workers},\n  \"requests_per_cell\": {n_requests},\n  \"float_accuracy\": {{\"tea\": {:.4}, \"biased\": {:.4}}},\n  \"replicas_needed_for_recovery\": {{\"tea\": {}, \"biased\": {}}},\n  \"cells\": [\n{rows}\n  ]{adaptive_rows}{gateway_rows}{consolidation_rows}{fleet_rows}{tier_rows}\n}}\n",
            tea.float_accuracy,
            biased.float_accuracy,
            fmt_needs(tea_needs),
            fmt_needs(biased_needs),
        );
        let mut f = File::create(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("wrote {json_path}");
    }

    if let Some(out_path) = telemetry_out {
        adaptive_run(&biased.network, &data, &out_path, workers, spf, n_requests)?;
    }

    std::fs::remove_file(&tea_path).ok();
    std::fs::remove_file(&biased_path).ok();
    Ok(())
}

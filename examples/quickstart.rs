//! Quickstart: train the paper's Fig. 3 network with probability-biased
//! learning, deploy it to the simulated TrueNorth chip, and classify.
//!
//! Run with: `cargo run --release --example quickstart`

use truenorth::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small run so the example finishes in well under a minute.
    let scale = RunScale {
        n_train: 2500,
        n_test: 500,
        epochs: 8,
        seeds: 1,
        threads: 2,
    };

    // Test bench 1: synthetic MNIST through four neuro-synaptic cores.
    let bench = TestBench::new(1, 7);
    let data = bench.load_data(&scale, 7);
    println!(
        "dataset: {} train / {} test images, {} cores per network copy",
        data.train_y.len(),
        data.test_y.len(),
        bench.arch.total_cores()
    );

    // Tea learning (the stock flow) vs the paper's biased learning.
    let tea = train_model(&bench, &data, Penalty::None, &scale, 7)?;
    let biased = train_model(&bench, &data, bench.biasing_penalty(), &scale, 7)?;
    println!(
        "float accuracy: tea {:.4}, biased {:.4}",
        tea.float_accuracy, biased.float_accuracy
    );

    // Deploy each to the chip (1 copy, 1 spike per frame) and compare.
    for m in [&tea, &biased] {
        let acc = evaluate_accuracy(&m.spec, &data.test_x, &data.test_y, 1, 1, 99)?;
        println!(
            "deployed ({}): {:.4}  [synaptic variance {:.4}]",
            m.penalty.name(),
            acc,
            mean_synaptic_variance(&m.network)
        );
    }

    // The biased model deploys with almost no sampling deviation (Fig. 4).
    let dep = Deployment::build(&biased.spec, 1, 99)?;
    let stats = DeviationStats::of_core(&dep, &biased.spec, 0, 0);
    println!(
        "biased model, core 0: {:.1}% of synapses deploy with zero deviation",
        100.0 * stats.zero_fraction
    );
    Ok(())
}

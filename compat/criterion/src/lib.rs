//! Offline mini benchmark harness.
//!
//! Source-compatible with the slice of the `criterion` 0.5 API this
//! workspace's benches use: `Criterion`, `benchmark_group` with
//! `sample_size`/`measurement_time`, `bench_function`, `Bencher::{iter,
//! iter_batched, iter_batched_ref}`, [`BatchSize`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it takes `sample_size`
//! timed samples (after a short warm-up) within the configured measurement
//! time and reports the median, min, and max time per iteration on
//! stdout. Good enough to track relative regressions by eye and to keep
//! `cargo bench` runnable without crates.io access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim treats every variant as
/// per-iteration setup excluded from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Collects timed samples for one benchmark function.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    /// Iterations folded into each timed sample.
    iters_per_sample: u64,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    fn new(target_samples: usize, budget: Duration) -> Self {
        Self {
            samples: Vec::with_capacity(target_samples),
            iters_per_sample: 1,
            target_samples,
            budget,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: aim for samples of >= ~50 µs so the
        // timer overhead disappears.
        let t0 = Instant::now();
        let one = {
            let s = Instant::now();
            black_box(routine());
            s.elapsed()
        };
        let per_ns = one.as_nanos().max(1);
        self.iters_per_sample = ((50_000 / per_ns) as u64).max(1);
        let deadline = t0 + self.budget;
        while self.samples.len() < self.target_samples && Instant::now() < deadline {
            let s = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(s.elapsed() / self.iters_per_sample as u32);
        }
        if self.samples.is_empty() {
            self.samples.push(one);
        }
    }

    /// Time `routine` on a fresh `setup()` value each iteration; setup is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let t0 = Instant::now();
        let deadline = t0 + self.budget;
        while self.samples.len() < self.target_samples && Instant::now() < deadline {
            let input = setup();
            let s = Instant::now();
            black_box(routine(input));
            self.samples.push(s.elapsed());
        }
        if self.samples.is_empty() {
            let input = setup();
            let s = Instant::now();
            black_box(routine(input));
            self.samples.push(s.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut` access
    /// to the setup value.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        setup: S,
        mut routine: R,
        size: BatchSize,
    ) {
        self.iter_batched(
            setup,
            |mut input| {
                routine(&mut input);
                input
            },
            size,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{name:<50} median {:>12}   [{} .. {}]  ({} samples)",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi),
        samples.len(),
    );
}

/// A named group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the per-benchmark measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), &mut b.samples);
    }

    /// Finish the group (printing happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Accept (and ignore) command-line configuration; kept for parity
    /// with `criterion_main!`-generated code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            measurement_time,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&id.into(), &mut b.samples);
    }

    /// Final summary hook (no-op; kept for API parity).
    pub fn final_summary(&mut self) {}
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a set of [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5, Duration::from_millis(200));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn batched_runs_setup_per_sample() {
        let mut b = Bencher::new(3, Duration::from_millis(200));
        let mut setups = 0;
        b.iter_batched_ref(
            || {
                setups += 1;
                vec![0u8; 64]
            },
            |v| v[0] = 1,
            BatchSize::SmallInput,
        );
        assert!(setups >= 1);
        assert_eq!(setups, b.samples.len());
    }

    #[test]
    fn groups_run_to_completion() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}

//! No-op derive macros for the offline `serde` stand-in.
//!
//! `#[derive(Serialize, Deserialize)]` expands to nothing: the workspace
//! only uses the derives as machine-checked annotations (and to stay
//! source-compatible with real serde), never for actual serialization.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; accepted anywhere real serde's derive would be.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted anywhere real serde's derive would be.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

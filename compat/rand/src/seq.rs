//! Sequence-related helpers (`SliceRandom`).

use crate::{RngCore, SampleUniform};

/// Randomized operations on slices.
pub trait SliceRandom {
    /// Shuffle the slice in place (Fisher–Yates), deterministically for a
    /// fixed generator state.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_between(0, i, true, rng);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements almost surely move");
    }

    #[test]
    fn tiny_slices_are_fine() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut empty: [usize; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [42];
        one.shuffle(&mut rng);
        assert_eq!(one, [42]);
    }
}

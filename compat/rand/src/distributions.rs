//! Distribution objects (`Uniform`).

use crate::{RngCore, SampleUniform};

/// Types that can be sampled repeatedly from a distribution object.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// A uniform distribution over a fixed interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when sampling if `lo >= hi`.
    pub fn new(lo: T, hi: T) -> Self {
        Self {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over the closed interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when sampling if `lo > hi`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        Self {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(self.lo, self.hi, self.inclusive, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn inclusive_uniform_is_symmetric() {
        let dist = Uniform::new_inclusive(-0.5f32, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
            sum += x as f64;
        }
        assert!(sum.abs() / 10_000.0 < 0.01);
    }

    #[test]
    fn integer_uniform_hits_bounds() {
        let dist = Uniform::new_inclusive(0usize, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[dist.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of primitives it needs: a seedable generator
//! ([`rngs::StdRng`]), the [`Rng`] convenience trait (`gen`, `gen_range`,
//! `gen_bool`), slice shuffling ([`seq::SliceRandom`]), and the uniform
//! distribution ([`distributions::Uniform`]).
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but every consumer
//! in this workspace only relies on (a) determinism for a fixed seed and
//! (b) sound statistical quality, both of which hold. Streams are stable
//! across platforms and releases of this shim.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly "at random" by [`Rng::gen`] (the shim's
/// equivalent of sampling the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalar types with a uniform-range sampler.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let u = <$t as Standard>::draw(rng);
                // [0,1) scaled into the span; for the inclusive form the
                // closed endpoint is reachable only up to rounding, which
                // matches upstream's floating-point behavior closely
                // enough for every consumer here.
                lo + (hi - lo) * u
            }
        }
    };
}

impl_sample_uniform_float!(f32);
impl_sample_uniform_float!(f64);

macro_rules! impl_sample_uniform_uint {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as u64).wrapping_sub(lo as u64).wrapping_add(1)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as u64) - (lo as u64)
                };
                if span == 0 {
                    // Inclusive full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                // Lemire's unbiased-enough widening multiply (the modulo
                // bias at 64 bits is far below anything observable here).
                let x = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64 + x) as $t
            }
        }
    };
}

impl_sample_uniform_uint!(usize);
impl_sample_uniform_uint!(u64);
impl_sample_uniform_uint!(u32);

impl SampleUniform for i32 {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        // Shift into u64 space, sample, shift back.
        let off = |v: i32| (v as i64).wrapping_sub(i32::MIN as i64) as u64;
        let x = u64::sample_between(off(lo), off(hi), inclusive, rng);
        (x as i64 + i32::MIN as i64) as i32
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-samplable type (`f32`/`f64` in
    /// `[0, 1)`, integers over their full width).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a range (`a..b` half-open, `a..=b` closed).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&y));
            let z = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: **xoshiro256++** (Blackman &
/// Vigna), state-expanded from the seed with SplitMix64.
///
/// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12), but a
/// deterministic, high-quality, allocation-free generator that every
/// consumer in this workspace treats as an opaque seeded source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // A zero state would be a fixed point; SplitMix64 cannot emit four
        // zeros in a row, so `s` is always valid.
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        for seed in 0..64 {
            let rng = StdRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0; 4]);
        }
    }

    #[test]
    fn low_bits_vary() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ones = 0usize;
        for _ in 0..1000 {
            ones += (rng.next_u64() & 1) as usize;
        }
        assert!((400..600).contains(&ones), "lsb ones {ones}");
    }
}

//! Offline stand-in for the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types to document intent and keep the door open for a real format
//! crate, but it never routes data through serde (model persistence is a
//! hand-rolled binary format in `tn-learn::persist`). Since the build
//! environment has no crates.io access, this crate supplies just enough
//! surface for those derives to compile: marker traits and no-op derive
//! macros re-exported under the `derive` feature.

#![warn(missing_docs)]

/// Marker for types that declare themselves serializable.
///
/// No serializer exists in this workspace; the trait carries no methods.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
///
/// No deserializer exists in this workspace; the trait carries no methods.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

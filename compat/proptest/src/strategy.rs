//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($t:ty) => {
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    };
}

impl_range_strategy!(f32);
impl_range_strategy!(f64);
impl_range_strategy!(usize);
impl_range_strategy!(u32);
impl_range_strategy!(u64);
impl_range_strategy!(i32);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = (1usize..=4, 1usize..=4)
            .prop_flat_map(|(r, c)| crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v)));
        for _ in 0..50 {
            let (r, c, v) = s.sample(&mut rng);
            assert_eq!(v.len(), r * c);
        }
    }

    #[test]
    fn just_returns_the_value() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(7usize).sample(&mut rng), 7);
    }
}

//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for [`vec()`]: an exact size, a half-open range,
/// or an inclusive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s whose elements come from `elem` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_test("vec");
        let exact = vec(0u64..10, 5);
        assert_eq!(exact.sample(&mut rng).len(), 5);
        let ranged = vec(0u64..10, 1..4);
        for _ in 0..100 {
            assert!((1..4).contains(&ranged.sample(&mut rng).len()));
        }
    }
}

//! Deterministic per-test RNG and case-count policy.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of cases each property runs: `PROPTEST_CASES` env var, or 64.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// The RNG handed to strategies: seeded from the test name (FNV-1a), so a
/// property's inputs are identical on every run and every platform.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn name_determines_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        assert_ne!(TestRng::for_test("x").rng().next_u64(), c.rng().next_u64());
    }

    #[test]
    fn cases_is_positive() {
        assert!(cases() > 0);
    }
}

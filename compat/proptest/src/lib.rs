//! Offline mini property-testing harness.
//!
//! Source-compatible with the slice of the `proptest` API this workspace
//! uses: the [`proptest!`] macro (`arg in strategy` bindings), range and
//! collection strategies, `prop_map`/`prop_flat_map` combinators, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the standard assert
//!   message; the run is deterministic (the RNG is seeded from the test
//!   name), so failures reproduce exactly.
//! * **Fixed case count** — 64 cases per property, overridable with the
//!   `PROPTEST_CASES` environment variable.
//! * `prop_assume!` skips the current case rather than resampling.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests: the [`strategy::Strategy`] trait and
/// the test macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests.
///
/// Each function runs [`test_runner::cases`] times with every `arg in
/// strategy` binding freshly sampled from a per-test deterministic RNG.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // A closure per case lets `prop_assume!` skip via
                    // `return` without ending the whole test.
                    let case = move || { $body };
                    case();
                }
            }
        )+
    };
}

/// Assert a condition inside a property (plain `assert!` here — no
/// shrinking, the seeded run already reproduces).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {

    proptest! {
        /// The harness itself: bindings sample in range, assume skips.
        #[test]
        fn harness_samples_in_range(x in 0.0f32..=1.0, n in 1usize..10) {
            prop_assume!(n != 3);
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(n == 3, false);
        }

        /// Combinators compose.
        #[test]
        fn harness_combinators(v in crate::collection::vec(0u64..100, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn properties_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0.0f64..1.0;
        for _ in 0..20 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}

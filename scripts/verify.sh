#!/usr/bin/env bash
# Repo verification gate: tier-1 (build + tests, see ROADMAP.md) plus the
# workspace lint gate. Run from anywhere; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: workspace tests =="
cargo test -q

echo "== kernel equivalence: compiled fast path vs reference interpreter =="
cargo test -q -p truenorth --test integration_kernel

echo "== bench smoke: compiled tick throughput =="
TN_BENCH_TICKS=100 cargo run --release -q -p tn-bench --bin bench_tick

echo "== bench smoke: lockstep lane batching =="
TN_BENCH_TICKS=100 cargo run --release -q -p tn-bench --bin bench_tick -- --batch 8

echo "== telemetry smoke: adaptive serve exports valid snapshots =="
TELEMETRY_OUT="$(mktemp /tmp/tn_verify_telemetry.XXXXXX.jsonl)"
trap 'rm -f "$TELEMETRY_OUT"' EXIT
TN_TRAIN=200 TN_TEST=60 TN_EPOCHS=1 TN_SERVE_REQUESTS=200 \
  cargo run --release -q -p truenorth --example serve_throughput -- \
  --telemetry "$TELEMETRY_OUT"
cargo run --release -q -p tn-telemetry --bin snapshot_check -- \
  "$TELEMETRY_OUT" --min 1

echo "== lint gate: clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== doc gate: rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "verify OK"

#!/usr/bin/env bash
# Repo verification gate: tier-1 (build + tests, see ROADMAP.md) plus the
# workspace lint gate. Run from anywhere; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: workspace tests =="
cargo test -q

echo "== kernel equivalence: compiled fast path vs reference interpreter =="
cargo test -q -p truenorth --test integration_kernel

echo "== bench smoke: compiled tick throughput =="
TN_BENCH_TICKS=100 cargo run --release -q -p tn-bench --bin bench_tick

echo "== bench smoke: lockstep lane batching =="
TN_BENCH_TICKS=100 cargo run --release -q -p tn-bench --bin bench_tick -- --batch 8

echo "== bench smoke: near-silent sparse walk =="
TN_BENCH_TICKS=100 cargo run --release -q -p tn-bench --bin bench_tick -- --sparsity 0.02

echo "== telemetry smoke: adaptive serve exports valid snapshots =="
TELEMETRY_OUT="$(mktemp /tmp/tn_verify_telemetry.XXXXXX.jsonl)"
GATEWAY_TRAIL="$(mktemp /tmp/tn_verify_gateway.XXXXXX.jsonl)"
PACKED_TRAIL="$(mktemp /tmp/tn_verify_packed.XXXXXX.jsonl)"
TIER_TRAIL="$(mktemp /tmp/tn_verify_tiers.XXXXXX.jsonl)"
FLEET_TRAIL="$(mktemp /tmp/tn_verify_fleet.XXXXXX.jsonl)"
trap 'rm -f "$TELEMETRY_OUT" "$GATEWAY_TRAIL" "$PACKED_TRAIL" "$TIER_TRAIL" "$FLEET_TRAIL"' EXIT
# --packed also runs the two-tenant consolidation sweep, which asserts
# per-tenant bit-identity with solo runtimes and (at >= 100 requests per
# model) that the packed runtime beats the split-solo baseline on
# aggregate throughput at equal total worker threads.
TN_TRAIN=200 TN_TEST=60 TN_EPOCHS=1 TN_SERVE_REQUESTS=200 \
  cargo run --release -q -p truenorth --example serve_throughput -- \
  --telemetry "$TELEMETRY_OUT" --packed "$PACKED_TRAIL"
# --require-sparsity: a compiled-backend serving run must report
# sparse-walk activity (chip.axon_slots > 0) in its snapshots.
cargo run --release -q -p tn-telemetry --bin snapshot_check -- \
  "$TELEMETRY_OUT" --min 1 --require-sparsity
# --models 2: the packed trail must export exactly two tenants' counter
# families, and they must tile the global serve.* totals.
cargo run --release -q -p tn-telemetry --bin snapshot_check -- \
  "$PACKED_TRAIL" --min 1 --models 2

echo "== tier smoke: quality tiers, escalation, per-tier telemetry =="
# --tiers runs fast/certain/guarded cells on a calibrated tiered runtime
# and asserts the fast tier wins on req/s and J/frame (the accuracy and
# escalation-recovery asserts need a real model and only arm at
# TN_TRAIN >= 800). The mixed-stream trail must export exactly three
# tiers' serve.tier.{t}.* families, internally consistent.
TN_TRAIN=200 TN_TEST=60 TN_EPOCHS=1 TN_SERVE_REQUESTS=200 \
  cargo run --release -q -p truenorth --example serve_throughput -- \
  --tiers "$TIER_TRAIL"
cargo run --release -q -p tn-telemetry --bin snapshot_check -- \
  "$TIER_TRAIL" --min 1 --tiers 3

echo "== fleet smoke: 2-shard scale-out, bit-identity, aggregated heartbeats =="
# --fleet serves the stream through a 1-shard and a 2-shard in-process
# fleet and asserts the answer streams are bit-identical across widths
# (the N-beats-1 aggregate-throughput assert arms only with enough cores
# to run every shard's workers concurrently). The router's aggregated
# tn-telemetry/1 heartbeat trail must validate like any snapshot stream.
TN_TRAIN=200 TN_TEST=60 TN_EPOCHS=1 TN_SERVE_REQUESTS=200 \
  cargo run --release -q -p truenorth --example serve_throughput -- \
  --fleet "$FLEET_TRAIL"
cargo run --release -q -p tn-telemetry --bin snapshot_check -- \
  "$FLEET_TRAIL" --min 2

echo "== gateway smoke: wire serving, load shedding, graceful drain =="
# The demo asserts: concurrent std-TCP clients all served 200, at least
# one 503 + Retry-After under a forced-saturation burst, and a clean
# drain losing no admitted request. Its telemetry trail is then fed to
# snapshot_check on stdin (the '-' path).
TN_TRAIN=200 TN_TEST=60 TN_EPOCHS=1 TN_GATEWAY_CLIENTS=3 TN_GATEWAY_REQUESTS=24 \
  cargo run --release -q -p truenorth --example gateway_demo -- \
  --telemetry "$GATEWAY_TRAIL"
cargo run --release -q -p tn-telemetry --bin snapshot_check -- - --min 1 \
  < "$GATEWAY_TRAIL"

echo "== lint gate: clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== doc gate: rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "verify OK"

#!/usr/bin/env bash
# Repo verification gate: tier-1 (build + tests, see ROADMAP.md) plus the
# workspace lint gate. Run from anywhere; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: workspace tests =="
cargo test -q

echo "== kernel equivalence: compiled fast path vs reference interpreter =="
cargo test -q -p truenorth --test integration_kernel

echo "== bench smoke: compiled tick throughput =="
TN_BENCH_TICKS=100 cargo run --release -q -p tn-bench --bin bench_tick

echo "== bench smoke: lockstep lane batching =="
TN_BENCH_TICKS=100 cargo run --release -q -p tn-bench --bin bench_tick -- --batch 8

echo "== lint gate: clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== doc gate: rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "verify OK"
